//! Fused multi-frequency grid replay.
//!
//! A DVFS sweep runs the *same* instruction stream once per frequency
//! point, yet the detailed engine consumes `freq_hz` in exactly two
//! places: the DRAM latency in core cycles
//! (`cfg.dram.access_cycles(freq_hz)`, precomputed at construction) and
//! the final cycles→seconds conversion. Every long-lived structure —
//! caches, TLBs, branch predictor, wrong-path pollution, the stochastic
//! micro-event RNG — evolves identically across the grid (see DESIGN.md
//! §11 for the full invariance argument).
//!
//! [`GridEngine`] exploits that: it steps the shared frequency-invariant
//! structures **once** per instruction and accumulates N per-frequency
//! *lanes*, each carrying only its own DRAM stall cost and cycle/stall
//! accumulators. The emitted [`SimResult`]s are bit-identical to N
//! independent [`Engine`] runs — each lane replays the exact sequence of
//! `f64` additions the reference engine would perform at that frequency
//! (floating-point addition is not associative, so ordering is part of
//! the contract). In debug builds every step is cross-checked against N
//! retained reference engines.
//!
//! [`GridBackend`] lifts the same idea over the fidelity tiers: the
//! atomic tier's cost table is frequency-independent (one functional pass
//! serves every lane), and the sampled tier shares its fast-forward
//! warming and window schedule across lanes while measuring per-lane
//! cycle deltas.
//!
//! # Examples
//!
//! ```
//! use gemstone_uarch::configs::cortex_a15_hw;
//! use gemstone_uarch::core::Engine;
//! use gemstone_uarch::grid::GridEngine;
//! use gemstone_uarch::instr::{Instr, InstrClass};
//!
//! let stream: Vec<Instr> = (0..5_000)
//!     .map(|i| Instr::alu(InstrClass::IntAlu, (i % 256) * 4))
//!     .collect();
//! let freqs = [0.6e9, 1.0e9, 1.4e9, 1.8e9];
//! let mut grid = GridEngine::new(cortex_a15_hw(), &freqs, 1);
//! let fused = grid.run(stream.clone().into_iter());
//! for (&f, r) in freqs.iter().zip(&fused) {
//!     let mut reference = Engine::new(cortex_a15_hw(), f, 1);
//!     let expect = reference.run(stream.clone().into_iter());
//!     assert_eq!(r.cycles, expect.cycles);
//!     assert_eq!(r.seconds, expect.seconds);
//! }
//! ```

use crate::backend::{
    record_tier_run, sampled_detailed_counter, sampled_fastforward_counter,
    sampled_windows_counter, scale_stats, AtomicEngine, Fidelity, SampleMeta, SampleParams,
    TierConfig,
};
use crate::branch::BranchUnit;
use crate::cache::{run_prefetch, warm_prefetch, Cache};
#[cfg(debug_assertions)]
use crate::core::Engine;
use crate::core::{CoreConfig, CyclePartial, SimResult};
use crate::instr::{Instr, InstrClass};
use crate::stats::{ClassCounts, SimStats, StallCycles};
use crate::tlb::{TlbHierarchy, TlbKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// Process-wide count of fused grid replays (`engine.grid.replays`).
fn grid_replays_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| gemstone_obs::Registry::global().counter("engine.grid.replays"))
}

/// Process-wide count of frequency lanes served by fused grid replays
/// (`engine.grid.lanes`).
fn grid_lanes_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| gemstone_obs::Registry::global().counter("engine.grid.lanes"))
}

/// Records one completed fused grid replay serving `lanes` frequency
/// lanes of `instructions` committed instructions each: bumps the
/// `engine.grid.*` counters and credits the `engine.tier.*` accounting
/// with the `lanes` logical runs the replay stands in for.
pub fn record_grid_run(fidelity: Fidelity, lanes: usize, instructions: u64) {
    grid_replays_counter().inc();
    grid_lanes_counter().add(lanes as u64);
    for _ in 0..lanes {
        record_tier_run(fidelity, instructions);
    }
}

/// The obs span wrapped around a fused grid replay at the given tier.
pub fn grid_span_name(fidelity: Fidelity) -> &'static str {
    match fidelity {
        Fidelity::Atomic => "engine.run.grid.atomic",
        Fidelity::Approx => "engine.run.grid",
        Fidelity::Sampled => "engine.run.grid.sampled",
    }
}

/// Per-frequency accumulator state: everything in [`Engine`] that actually
/// depends on `freq_hz`. The DRAM stall cost is folded into `stall_fetch`
/// (front-end fills) and `stall_memory` (data fills); every other stall
/// bucket is frequency-invariant and lives once in the shared engine.
#[derive(Debug, Clone)]
struct GridLane {
    freq_hz: f64,
    dram_cycles: f64,
    // Open accumulator span since the last canonical boundary drain;
    // earlier spans live in `partials` (same discipline as [`Engine`]),
    // so a lane spliced from segments folds bit-identically to a
    // sequential one.
    cycles: f64,
    stall_fetch: f64,
    stall_memory: f64,
    partials: Vec<CyclePartial>,
}

/// A fused multi-frequency replay engine: steps the shared
/// frequency-invariant structures once per instruction and accumulates one
/// cycle lane per frequency, emitting [`SimResult`]s bit-identical to
/// independent per-frequency [`Engine`] runs (cross-checked against
/// retained reference engines in debug builds).
#[derive(Debug, Clone)]
pub struct GridEngine {
    cfg: CoreConfig,
    threads: u32,
    bu: BranchUnit,
    tlbs: TlbHierarchy,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    rng: SmallRng,
    lanes: Vec<GridLane>,
    // Shared (frequency-invariant) accumulators — identical to Engine's,
    // except `stalls.fetch` / `stalls.memory` which live per lane.
    stalls: StallCycles,
    committed: ClassCounts,
    wrong_path: ClassCounts,
    l1i_reported_accesses: u64,
    unaligned_loads: u64,
    unaligned_stores: u64,
    strex_fails: u64,
    dtlb_miss_loads: u64,
    dtlb_miss_stores: u64,
    snoops: u64,
    nonspec_stalls: u64,
    last_fetch_line: u64,
    last_data_page: u64,
    instr_since_flush: u64,
    group_fill: u32,
    issue_cost: f64,
    l1d_line_shift: u32,
    /// Retained per-frequency reference engines, stepped in lockstep and
    /// compared after every instruction (debug builds only).
    #[cfg(debug_assertions)]
    refs: Vec<Engine>,
}

impl GridEngine {
    /// Builds a grid engine for `cfg` over the frequency lanes `freqs_hz`
    /// (one lane per entry, results emitted in the same order) with the
    /// default engine seed.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz` is empty, any frequency is `<= 0`, or
    /// `threads == 0`.
    pub fn new(cfg: CoreConfig, freqs_hz: &[f64], threads: u32) -> Self {
        Self::with_seed(cfg, freqs_hz, threads, 0x5EED_CAFE)
    }

    /// Like [`GridEngine::new`] with an explicit RNG seed. Lane
    /// equivalence requires the same seed an independent
    /// [`Engine::with_seed`] would use.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz` is empty, any frequency is `<= 0`, or
    /// `threads == 0`.
    pub fn with_seed(cfg: CoreConfig, freqs_hz: &[f64], threads: u32, seed: u64) -> Self {
        assert!(!freqs_hz.is_empty(), "at least one frequency lane");
        assert!(
            freqs_hz.iter().all(|&f| f > 0.0),
            "frequencies must be positive"
        );
        assert!(threads > 0, "at least one thread");
        let bu = BranchUnit::new(
            cfg.bp.build(),
            cfg.btb_entries,
            cfg.ras_entries,
            cfg.indirect_entries,
        );
        let tlbs = TlbHierarchy::new(cfg.itlb, cfg.dtlb, cfg.l2tlb.build());
        let lanes = freqs_hz
            .iter()
            .map(|&f| GridLane {
                freq_hz: f,
                dram_cycles: cfg.dram.access_cycles(f),
                cycles: 0.0,
                stall_fetch: 0.0,
                stall_memory: 0.0,
                partials: Vec::new(),
            })
            .collect();
        let eff_width = f64::from(cfg.width) * cfg.issue_efficiency;
        #[cfg(debug_assertions)]
        let refs = freqs_hz
            .iter()
            .map(|&f| Engine::with_seed(cfg.clone(), f, threads, seed))
            .collect();
        GridEngine {
            threads,
            bu,
            tlbs,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            rng: SmallRng::seed_from_u64(seed),
            lanes,
            stalls: StallCycles::default(),
            committed: ClassCounts::default(),
            wrong_path: ClassCounts::default(),
            l1i_reported_accesses: 0,
            unaligned_loads: 0,
            unaligned_stores: 0,
            strex_fails: 0,
            dtlb_miss_loads: 0,
            dtlb_miss_stores: 0,
            snoops: 0,
            nonspec_stalls: 0,
            last_fetch_line: u64::MAX,
            last_data_page: 0,
            instr_since_flush: 0,
            group_fill: 0,
            issue_cost: 1.0 / eff_width.max(0.25),
            l1d_line_shift: cfg.l1d.line_shift(),
            #[cfg(debug_assertions)]
            refs,
            cfg,
        }
    }

    /// Number of frequency lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The frequency of lane `i` in Hz.
    pub fn lane_freq(&self, i: usize) -> f64 {
        self.lanes[i].freq_hz
    }

    /// Lane `i`'s *open* cycle span — cycles since the last canonical
    /// boundary drain. The sampled grid tier reads per-instruction cycle
    /// deltas through this; deltas against the open span are identical
    /// between sequential and segment-local engines, which deltas against
    /// a folded total would not be.
    pub fn lane_cycles(&self, i: usize) -> f64 {
        self.lanes[i].cycles
    }

    /// Drains every lane's open span (and the shared stall buckets) onto
    /// the per-lane partials lists — the grid counterpart of
    /// [`Engine::boundary`], called at the same canonical instruction
    /// indices. Each lane's partial carries the shared stall components
    /// plus its own fetch/memory buckets, mirroring how
    /// [`GridEngine::finish`] assembles per-lane stall totals.
    pub fn boundary(&mut self) {
        let shared = self.stalls;
        for lane in &mut self.lanes {
            lane.partials.push(CyclePartial {
                cycles: lane.cycles,
                stalls: StallCycles {
                    fetch: lane.stall_fetch,
                    memory: lane.stall_memory,
                    ..shared
                },
            });
            lane.cycles = 0.0;
            lane.stall_fetch = 0.0;
            lane.stall_memory = 0.0;
        }
        self.stalls = StallCycles::default();
        #[cfg(debug_assertions)]
        for r in &mut self.refs {
            r.boundary();
        }
    }

    /// Splices a detached segment's results into this engine, lane by
    /// lane: integer event counts sum exactly, per-lane f64 partials are
    /// appended in order. Call in segment order, starting from a fresh
    /// grid (see [`Engine::absorb_segment`] for the contract).
    ///
    /// # Panics
    ///
    /// Panics if `seg` has a different lane count.
    pub fn absorb_segment(&mut self, seg: &GridEngine) {
        assert_eq!(
            self.lanes.len(),
            seg.lanes.len(),
            "segment grids must share the lane layout"
        );
        for (mine, theirs) in self.lanes.iter_mut().zip(&seg.lanes) {
            mine.partials.extend(theirs.partials.iter().copied());
            mine.cycles += theirs.cycles;
            mine.stall_fetch += theirs.stall_fetch;
            mine.stall_memory += theirs.stall_memory;
        }
        self.stalls.accumulate(&seg.stalls);
        self.committed = self.committed.add(&seg.committed);
        self.wrong_path = self.wrong_path.add(&seg.wrong_path);
        self.l1i_reported_accesses += seg.l1i_reported_accesses;
        self.unaligned_loads += seg.unaligned_loads;
        self.unaligned_stores += seg.unaligned_stores;
        self.strex_fails += seg.strex_fails;
        self.dtlb_miss_loads += seg.dtlb_miss_loads;
        self.dtlb_miss_stores += seg.dtlb_miss_stores;
        self.snoops += seg.snoops;
        self.nonspec_stalls += seg.nonspec_stalls;
        self.bu.absorb_counters(&seg.bu.counters());
        self.tlbs.absorb_counters(&seg.tlbs);
        self.l1i.absorb_counters(&seg.l1i.counters());
        self.l1d.absorb_counters(&seg.l1d.counters());
        self.l2.absorb_counters(&seg.l2.counters());
        #[cfg(debug_assertions)]
        for (r, s) in self.refs.iter_mut().zip(&seg.refs) {
            r.absorb_segment(s);
        }
    }

    /// Debug-build lockstep check against a sequential reference grid
    /// (the segmented runner's splice verification).
    #[cfg(debug_assertions)]
    pub(crate) fn debug_assert_matches(&self, reference: &GridEngine) {
        assert_eq!(self.lanes.len(), reference.lanes.len());
        for (i, (a, b)) in self.lanes.iter().zip(&reference.lanes).enumerate() {
            assert_eq!(a.partials.len(), b.partials.len(), "lane {i} partials");
            for (x, y) in a.partials.iter().zip(&b.partials) {
                assert_eq!(x.cycles.to_bits(), y.cycles.to_bits(), "lane {i} span");
            }
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits(), "lane {i} open span");
            assert_eq!(a.stall_fetch.to_bits(), b.stall_fetch.to_bits());
            assert_eq!(a.stall_memory.to_bits(), b.stall_memory.to_bits());
        }
        assert_eq!(
            self.committed.to_histogram(),
            reference.committed.to_histogram()
        );
        assert_eq!(
            self.wrong_path.to_histogram(),
            reference.wrong_path.to_histogram()
        );
        assert_eq!(
            format!(
                "{:?}/{:?}/{:?}/{:?}/{:?}",
                self.bu.counters(),
                self.tlbs.instruction_counters(),
                self.l1i.counters(),
                self.l1d.counters(),
                self.l2.counters()
            ),
            format!(
                "{:?}/{:?}/{:?}/{:?}/{:?}",
                reference.bu.counters(),
                reference.tlbs.instruction_counters(),
                reference.l1i.counters(),
                reference.l1d.counters(),
                reference.l2.counters()
            ),
            "structure counters diverged"
        );
    }

    /// Runs the grid over an instruction stream and returns one result per
    /// lane, recording the `engine.grid.*` and `engine.tier.*` counters.
    /// Drains at every canonical segment boundary, like [`Engine::run`].
    pub fn run(&mut self, stream: impl Iterator<Item = Instr>) -> Vec<SimResult> {
        let _span = gemstone_obs::span::span(grid_span_name(Fidelity::Approx))
            .attr("lanes", self.lane_count());
        let seg = crate::segment::segment_instrs();
        let mut until = seg;
        for instr in stream {
            self.step(&instr);
            until -= 1;
            if until == 0 {
                self.boundary();
                until = seg;
            }
        }
        let results = self.finish();
        record_grid_run(
            Fidelity::Approx,
            results.len(),
            results[0].stats.committed_instructions,
        );
        results
    }

    /// Processes one instruction on every lane (the shared structures step
    /// once; each lane replays only the cycle additions).
    #[inline]
    pub fn step(&mut self, instr: &Instr) {
        self.fetch(instr);
        self.issue(instr);
        match instr.class {
            c if c.is_memory() => self.memory(instr),
            c if c.is_branch() => self.branch(instr),
            InstrClass::Barrier => self.barrier(),
            _ => {}
        }
        self.count_committed(instr.class);
        #[cfg(debug_assertions)]
        self.cross_check_step(instr);
    }

    /// Functional warming across every lane: identical to
    /// [`Engine::warm_state`] — the warmed structures are all shared, so
    /// one pass serves the whole grid.
    #[inline]
    pub fn warm_state(&mut self, instr: &Instr) {
        if let Some(interval) = self.cfg.itlb_flush_interval {
            self.instr_since_flush += 1;
            if self.instr_since_flush >= interval {
                self.instr_since_flush = 0;
                self.tlbs.flush_instruction_l1();
            }
        }
        let line = instr.fetch_line();
        let new_line = line != self.last_fetch_line;
        // Fetch-group phase is state (it decides when the reported-access
        // counter ticks), so warming must advance it even though the tick
        // itself is not recorded.
        self.group_fill += 1;
        if new_line || self.group_fill >= self.cfg.fetch_group_size {
            self.group_fill = 0;
        }
        if new_line {
            self.last_fetch_line = line;
            self.tlbs.warm(TlbKind::Instruction, instr.page());
            if !self.l1i.warm(line, false).hit {
                self.warm_level2(line, false);
            }
        }
        match instr.class {
            c if c.is_memory() => {
                if let Some(mem) = instr.mem {
                    self.last_data_page = mem.page();
                    self.tlbs.warm(TlbKind::Data, mem.page());
                    let line = mem.vaddr >> self.l1d_line_shift;
                    if mem.unaligned {
                        self.l1d.warm(line + 1, mem.is_store);
                    }
                    let a = self.l1d.warm(line, mem.is_store);
                    if !a.hit {
                        self.warm_level2(line, mem.is_store);
                    }
                    if let Some(victim) = a.writeback_line {
                        self.l2.warm(victim, true);
                    }
                    // Keep the RNG in lockstep with the detailed path's
                    // stochastic micro-events (same draw conditions, same
                    // order; outcomes charge no cycles here).
                    if mem.shared && self.threads > 1 {
                        let _ = self.rng.gen::<f64>();
                    }
                    if instr.class == InstrClass::StoreExclusive && self.threads > 1 {
                        let _ = self.rng.gen::<f64>();
                    }
                }
            }
            c if c.is_branch() && self.bu.warm(instr) => self.warm_wrong_path(instr),
            _ => {}
        }
        #[cfg(debug_assertions)]
        for r in &mut self.refs {
            r.warm_state(instr);
        }
    }

    /// Front-end-only functional warming across every lane — the grid
    /// counterpart of [`Engine::warm_frontend`] (the startup prologue).
    /// The warmed structures are all shared, so one pass serves the whole
    /// grid; data-side state stays cold, exactly as on an independent
    /// engine.
    #[inline]
    pub fn warm_frontend(&mut self, instr: &Instr) {
        if let Some(interval) = self.cfg.itlb_flush_interval {
            self.instr_since_flush += 1;
            if self.instr_since_flush >= interval {
                self.instr_since_flush = 0;
                self.tlbs.flush_instruction_l1();
            }
        }
        let line = instr.fetch_line();
        let new_line = line != self.last_fetch_line;
        self.group_fill += 1;
        if new_line || self.group_fill >= self.cfg.fetch_group_size {
            self.group_fill = 0;
        }
        if new_line {
            self.last_fetch_line = line;
            self.tlbs.warm(TlbKind::Instruction, instr.page());
            if !self.l1i.warm(line, false).hit {
                self.warm_level2(line, false);
            }
        }
        if instr.class.is_branch() && self.bu.warm(instr) {
            self.warm_wrong_path(instr);
        }
        #[cfg(debug_assertions)]
        for r in &mut self.refs {
            r.warm_frontend(instr);
        }
    }

    fn warm_level2(&mut self, line: u64, is_write: bool) {
        if !self.l2.warm(line, is_write).hit && self.cfg.prefetch.degree > 0 {
            warm_prefetch(&mut self.l2, line, self.cfg.prefetch);
        }
    }

    fn warm_wrong_path(&mut self, instr: &Instr) {
        let depth = self.cfg.wrong_path_depth;
        if depth == 0 {
            return;
        }
        let br = instr.branch.expect("branch without metadata");
        let wp_page = br.target_page ^ (1 + (self.rng.gen::<u64>() & 0x1F));
        self.tlbs.warm(TlbKind::Instruction, wp_page);
        let lines = (u64::from(depth)).div_ceil(16).max(1);
        let base = self.rng.gen::<u64>() & 0x3F;
        for i in 0..lines {
            let line = (wp_page << 6) | ((base + i) & 0x3F);
            if !self.l1i.warm(line, false).hit {
                self.warm_level2(line, false);
            }
        }
        for _ in 0..3 {
            let page = self.last_data_page ^ (1 + (self.rng.gen::<u64>() & 0x7F));
            self.tlbs.warm(TlbKind::Data, page);
        }
    }

    /// Adds a frequency-invariant cycle amount to every lane (the shared
    /// stall bucket is updated once by the caller).
    #[inline]
    fn add_all(&mut self, amount: f64) {
        for lane in &mut self.lanes {
            lane.cycles += amount;
        }
    }

    /// Shared-state half of [`Engine`]'s `level2_fill`: one L2 access plus
    /// prefetch trigger; returns whether the L2 hit so each lane can price
    /// the fill against its own DRAM latency.
    fn level2_fill_shared(&mut self, line: u64, is_write: bool) -> bool {
        let a = self.l2.access(line, is_write);
        if !a.hit && self.cfg.prefetch.degree > 0 {
            run_prefetch(&mut self.l2, line, self.cfg.prefetch);
        }
        a.hit
    }

    /// A front-end (L1I-miss) fill: the L2/DRAM latency is exposed through
    /// the frontend stall factor, per lane. Mirrors the `level2_fill` →
    /// `cost * stall.frontend` sequence of [`Engine`] exactly.
    fn fill_frontend(&mut self, line: u64) {
        let l2_hit = self.level2_fill_shared(line, false);
        let l2_latency = f64::from(self.l2.latency());
        let frontend = self.cfg.stall.frontend;
        for lane in &mut self.lanes {
            let mut cost = l2_latency;
            if !l2_hit {
                cost += lane.dram_cycles;
            }
            let exposed = cost * frontend;
            lane.stall_fetch += exposed;
            lane.cycles += exposed;
        }
    }

    #[inline]
    fn fetch(&mut self, instr: &Instr) {
        if let Some(interval) = self.cfg.itlb_flush_interval {
            self.instr_since_flush += 1;
            if self.instr_since_flush >= interval {
                self.instr_since_flush = 0;
                self.tlbs.flush_instruction_l1();
            }
        }
        let line = instr.fetch_line();
        let new_line = line != self.last_fetch_line;
        self.group_fill += 1;
        if new_line || self.group_fill >= self.cfg.fetch_group_size {
            self.l1i_reported_accesses += 1;
            self.group_fill = 0;
        }
        if !new_line {
            return;
        }
        self.last_fetch_line = line;
        let t = self.tlbs.translate(TlbKind::Instruction, instr.page());
        if t.stall_cycles > 0 {
            self.stalls.fetch_tlb += f64::from(t.stall_cycles);
            self.add_all(f64::from(t.stall_cycles));
        }
        let a = self.l1i.access(line, false);
        if !a.hit {
            self.fill_frontend(line);
        }
    }

    #[inline]
    fn issue(&mut self, instr: &Instr) {
        self.add_all(self.issue_cost);
        let extra = match instr.class {
            InstrClass::IntMul => self.cfg.op_extra.int_mul,
            InstrClass::IntDiv => self.cfg.op_extra.int_div,
            InstrClass::FpAlu => self.cfg.op_extra.fp_alu,
            InstrClass::FpDiv => self.cfg.op_extra.fp_div,
            InstrClass::Simd => self.cfg.op_extra.simd,
            _ => 0.0,
        };
        if extra > 0.0 {
            let exposed = extra * self.cfg.stall.execute;
            self.stalls.execute += exposed;
            self.add_all(exposed);
        }
    }

    #[inline]
    fn memory(&mut self, instr: &Instr) {
        let mem = match instr.mem {
            Some(m) => m,
            None => return,
        };
        let is_store = mem.is_store;
        self.last_data_page = mem.page();
        let t = self.tlbs.translate(TlbKind::Data, mem.page());
        if !t.l1_hit {
            if is_store {
                self.dtlb_miss_stores += 1;
            } else {
                self.dtlb_miss_loads += 1;
            }
        }
        if t.stall_cycles > 0 {
            let exposed = f64::from(t.stall_cycles) * self.cfg.stall.dtlb;
            self.stalls.data_tlb += exposed;
            self.add_all(exposed);
        }
        let line = mem.vaddr >> self.l1d_line_shift;
        if mem.unaligned {
            if is_store {
                self.unaligned_stores += 1;
            } else {
                self.unaligned_loads += 1;
            }
            self.l1d.access(line + 1, is_store);
            self.add_all(1.0);
        }
        let a = self.l1d.access(line, is_store);
        // Lane-divergent cost: an L1D miss includes the per-lane DRAM
        // latency; the snoop component is invariant. The per-lane `f64`
        // operation sequence (zero-init, fill add, snoop add, one multiply)
        // mirrors Engine::memory exactly.
        let l2_fill = if a.hit {
            None
        } else {
            Some(self.level2_fill_shared(line, is_store))
        };
        if let Some(victim) = a.writeback_line {
            self.l2.access(victim, true);
        }
        let mut snooped = false;
        if mem.shared && self.threads > 1 && self.rng.gen::<f64>() < self.cfg.coherence_miss_prob {
            self.snoops += 1;
            snooped = true;
        }
        let l2_latency = f64::from(self.l2.latency());
        let snoop_cost = self.cfg.snoop_cost;
        let factor = if is_store {
            self.cfg.stall.store
        } else if mem.dependent {
            1.0
        } else {
            self.cfg.stall.load
        };
        for lane in &mut self.lanes {
            let mut cost = 0.0;
            if let Some(l2_hit) = l2_fill {
                let mut fill = l2_latency;
                if !l2_hit {
                    fill += lane.dram_cycles;
                }
                cost += fill;
            }
            if snooped {
                cost += snoop_cost;
            }
            if cost > 0.0 {
                let exposed = cost * factor;
                lane.stall_memory += exposed;
                lane.cycles += exposed;
            }
        }
        match instr.class {
            InstrClass::LoadExclusive => {
                self.nonspec_stalls += 1;
                let c = self.cfg.exclusive_cost * 0.5;
                self.stalls.serialization += c;
                self.add_all(c);
            }
            InstrClass::StoreExclusive => {
                self.nonspec_stalls += 1;
                let mut c = self.cfg.exclusive_cost;
                if self.threads > 1 && self.rng.gen::<f64>() < self.cfg.strex_fail_rate {
                    self.strex_fails += 1;
                    c *= 2.0;
                }
                self.stalls.serialization += c;
                self.add_all(c);
            }
            _ => {}
        }
    }

    #[inline]
    fn branch(&mut self, instr: &Instr) {
        let outcome = self.bu.process(instr);
        if !outcome.mispredicted {
            return;
        }
        let penalty = f64::from(self.cfg.pipeline_depth);
        self.stalls.mispredict += penalty;
        self.add_all(penalty);
        self.wrong_path_fetch(instr);
    }

    fn wrong_path_fetch(&mut self, instr: &Instr) {
        let depth = self.cfg.wrong_path_depth;
        if depth == 0 {
            return;
        }
        let br = instr.branch.expect("branch without metadata");
        let wp_page = br.target_page ^ (1 + (self.rng.gen::<u64>() & 0x1F));
        let t = self.tlbs.translate(TlbKind::Instruction, wp_page);
        if t.stall_cycles > 0 {
            let exposed = f64::from(t.stall_cycles) * self.cfg.stall.frontend;
            self.stalls.fetch_tlb += exposed;
            self.add_all(exposed);
        }
        let lines = (u64::from(depth)).div_ceil(16).max(1);
        let base = self.rng.gen::<u64>() & 0x3F;
        for i in 0..lines {
            let line = (wp_page << 6) | ((base + i) & 0x3F);
            let a = self.l1i.access(line, false);
            if !a.hit {
                self.fill_frontend(line);
            }
        }
        let d = (u64::from(depth) / 8).max(1);
        self.wrong_path.int_alu += d * 5 / 10;
        self.wrong_path.loads += d * 2 / 10;
        self.wrong_path.stores += d / 10;
        self.wrong_path.branches += d / 10;
        self.wrong_path.nops += d - (d * 5 / 10 + d * 2 / 10 + d / 10 + d / 10);
        for _ in 0..3 {
            let page = self.last_data_page ^ (1 + (self.rng.gen::<u64>() & 0x7F));
            let t = self.tlbs.translate(TlbKind::Data, page);
            if !t.l1_hit {
                self.dtlb_miss_loads += 1;
            }
        }
    }

    fn barrier(&mut self) {
        self.nonspec_stalls += 1;
        let sync = 1.0 + f64::from(self.threads - 1) * self.cfg.barrier_sync_factor;
        let c = self.cfg.barrier_cost * sync;
        self.stalls.serialization += c;
        self.add_all(c);
    }

    #[inline]
    fn count_committed(&mut self, class: InstrClass) {
        let c = &mut self.committed;
        match class {
            InstrClass::IntAlu => c.int_alu += 1,
            InstrClass::IntMul => c.int_mul += 1,
            InstrClass::IntDiv => c.int_div += 1,
            InstrClass::FpAlu => c.fp_alu += 1,
            InstrClass::FpDiv => c.fp_div += 1,
            InstrClass::Simd => c.simd += 1,
            InstrClass::Load => c.loads += 1,
            InstrClass::Store => c.stores += 1,
            InstrClass::Branch => c.branches += 1,
            InstrClass::IndirectBranch => c.indirect_branches += 1,
            InstrClass::Call => c.calls += 1,
            InstrClass::Return => c.returns += 1,
            InstrClass::LoadExclusive => c.load_exclusives += 1,
            InstrClass::StoreExclusive => c.store_exclusives += 1,
            InstrClass::Barrier => c.barriers += 1,
            InstrClass::Nop => c.nops += 1,
        }
    }

    /// Steps the retained reference engines in lockstep and asserts every
    /// lane's open cycle span matches bit-for-bit (both drain at the same
    /// canonical boundaries, so the open spans stay comparable).
    #[cfg(debug_assertions)]
    fn cross_check_step(&mut self, instr: &Instr) {
        for (i, r) in self.refs.iter_mut().enumerate() {
            r.step(instr);
            debug_assert_eq!(
                r.open_cycles(),
                self.lanes[i].cycles,
                "grid lane {i} ({:.0} Hz) diverged from the reference engine",
                self.lanes[i].freq_hz
            );
        }
    }

    /// Finalises every lane into a [`SimResult`] (one per frequency, in
    /// construction order). Reentrant, like [`Engine::finish`]. In debug
    /// builds the full statistics of each lane are asserted equal to the
    /// retained reference engine's.
    pub fn finish(&mut self) -> Vec<SimResult> {
        let mut spec = self.committed;
        let wp = &self.wrong_path;
        spec.int_alu += wp.int_alu;
        spec.loads += wp.loads;
        spec.stores += wp.stores;
        spec.branches += wp.branches;
        spec.nops += wp.nops;
        let l2c = self.l2.counters();
        let dram_reads = l2c.refill_reads
            + self.tlbs.instruction_counters().walks / 4
            + self.tlbs.data_counters().walks / 4;
        let dram_writes = l2c.refill_writes + l2c.writeback_lines;
        let results: Vec<SimResult> = self
            .lanes
            .iter()
            .map(|lane| {
                // Per-lane totals are the in-order fold of the drained
                // partials plus the open span — the exact fold Engine's
                // finish performs, so spliced and sequential lanes agree
                // bit-for-bit.
                let mut folded = CyclePartial::default();
                for p in &lane.partials {
                    folded.accumulate(p);
                }
                folded.accumulate(&CyclePartial {
                    cycles: lane.cycles,
                    stalls: StallCycles {
                        fetch: lane.stall_fetch,
                        memory: lane.stall_memory,
                        ..self.stalls
                    },
                });
                let mut stats = SimStats {
                    freq_hz: lane.freq_hz,
                    cycles: folded.cycles,
                    seconds: folded.cycles / lane.freq_hz,
                    committed: self.committed,
                    committed_instructions: self.committed.total(),
                    ..SimStats::default()
                };
                stats.speculative = spec;
                stats.speculative_instructions = spec.total();
                stats.wrong_path_instructions = self.wrong_path.total();
                stats.unaligned_loads = self.unaligned_loads;
                stats.unaligned_stores = self.unaligned_stores;
                stats.strex_fails = self.strex_fails;
                stats.branch = self.bu.counters();
                stats.itlb = self.tlbs.instruction_counters();
                stats.dtlb = self.tlbs.data_counters();
                stats.dtlb_miss_loads = self.dtlb_miss_loads;
                stats.dtlb_miss_stores = self.dtlb_miss_stores;
                stats.l1i = self.l1i.counters();
                stats.l1i_reported_accesses = self.l1i_reported_accesses;
                stats.l1d = self.l1d.counters();
                stats.l2 = self.l2.counters();
                stats.dram_reads = dram_reads;
                stats.dram_writes = dram_writes;
                stats.dram_accesses = dram_reads + dram_writes;
                stats.snoops = self.snoops;
                stats.nonspec_stalls = self.nonspec_stalls;
                stats.stalls = folded.stalls;
                stats.fp_counted_as_simd = self.cfg.fp_counted_as_simd;
                stats.split_l2_tlb = self.cfg.l2tlb.is_split();
                SimResult {
                    cycles: folded.cycles,
                    seconds: stats.seconds,
                    stats,
                }
            })
            .collect();
        #[cfg(debug_assertions)]
        for (r, reference) in results.iter().zip(self.refs.iter_mut()) {
            let expect = reference.finish();
            debug_assert_eq!(r.cycles, expect.cycles);
            debug_assert_eq!(r.seconds, expect.seconds);
            debug_assert_eq!(
                r.stats.gem5_stats_map(),
                expect.stats.gem5_stats_map(),
                "grid lane at {:.0} Hz diverged from the reference engine",
                r.stats.freq_hz
            );
        }
        results
    }
}

/// The atomic tier over a frequency grid: the fixed-cost table depends
/// only on the configuration and thread count, so one functional pass
/// serves every lane and only the cycles→seconds conversion differs.
#[derive(Debug)]
pub struct AtomicGridEngine {
    engine: AtomicEngine,
    freqs: Vec<f64>,
}

impl AtomicGridEngine {
    /// Builds an atomic grid over `freqs_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz` is empty, any frequency is `<= 0`, or
    /// `threads == 0`.
    pub fn new(cfg: &CoreConfig, freqs_hz: &[f64], threads: u32) -> Self {
        assert!(!freqs_hz.is_empty(), "at least one frequency lane");
        AtomicGridEngine {
            engine: AtomicEngine::new(cfg, freqs_hz[0], threads),
            freqs: freqs_hz.to_vec(),
        }
    }

    /// Number of frequency lanes.
    pub fn lane_count(&self) -> usize {
        self.freqs.len()
    }

    /// Retires one instruction on every lane.
    #[inline]
    pub fn step(&mut self, instr: &Instr) {
        use crate::backend::ExecBackend;
        self.engine.step(instr);
    }

    /// Retires a whole class histogram at once — the packed-trace fast
    /// path, shared across every lane.
    pub fn absorb_histogram(&mut self, hist: &[u64; InstrClass::COUNT]) {
        self.engine.absorb_histogram(hist);
    }

    /// Finalises one result per lane: the shared cycle count converted at
    /// each lane's frequency, bit-identical to independent
    /// [`AtomicEngine`] runs.
    pub fn finish(&mut self) -> Vec<SimResult> {
        use crate::backend::ExecBackend;
        let base = self.engine.finish();
        self.freqs
            .iter()
            .map(|&f| {
                let mut r = base.clone();
                r.stats.freq_hz = f;
                r.stats.seconds = r.cycles / f;
                r.seconds = r.stats.seconds;
                r
            })
            .collect()
    }
}

/// Per-lane measurement accumulators of the sampled grid tier.
#[derive(Debug, Clone, Default)]
struct SampledLane {
    // Open measured span + drained spans, mirroring SampledEngine's
    // measured-cycles discipline exactly.
    measured_cycles: f64,
    measured_partials: Vec<f64>,
    window_cycles: f64,
    window_cpis: Vec<f64>,
}

impl SampledLane {
    /// Total measured cycles: in-order fold of drained spans + open span.
    fn measured_cycles_total(&self) -> f64 {
        let mut total = 0.0;
        for p in &self.measured_partials {
            total += p;
        }
        total + self.measured_cycles
    }
}

/// The SMARTS-style sampled tier over a frequency grid: the window
/// schedule, atomic fast-forward warming, and architectural counts are
/// shared; each lane measures its own per-window cycle deltas through the
/// inner [`GridEngine`].
#[derive(Debug)]
pub struct SampledGridEngine {
    interval: u64,
    detailed_len: u64,
    warm_len: u64,
    detailed: GridEngine,
    counts: [u64; InstrClass::COUNT],
    pos: u64,
    total: u64,
    detailed_instr: u64,
    measured_instr: u64,
    window_instr: u64,
    accs: Vec<SampledLane>,
    /// Scratch: per-lane cycle counts before the current measured step.
    before: Vec<f64>,
}

impl SampledGridEngine {
    /// Builds a sampled grid engine over `freqs_hz` with the given
    /// sampling geometry, seeded like [`GridEngine::with_seed`].
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz` is empty, any frequency is `<= 0`, or
    /// `threads == 0`.
    pub fn new(
        cfg: CoreConfig,
        freqs_hz: &[f64],
        threads: u32,
        seed: u64,
        params: SampleParams,
    ) -> Self {
        let interval = params.interval.max(1);
        let detailed_len = params.detailed_len();
        SampledGridEngine {
            interval,
            detailed_len,
            warm_len: params.warmup.min(detailed_len),
            detailed: GridEngine::with_seed(cfg, freqs_hz, threads, seed),
            counts: [0; InstrClass::COUNT],
            pos: 0,
            total: 0,
            detailed_instr: 0,
            measured_instr: 0,
            window_instr: 0,
            accs: vec![SampledLane::default(); freqs_hz.len()],
            before: vec![0.0; freqs_hz.len()],
        }
    }

    /// Number of frequency lanes.
    pub fn lane_count(&self) -> usize {
        self.accs.len()
    }

    /// Startup-prologue warming: advances the inner fused grid's
    /// front-end state only, leaving the sampling schedule position
    /// untouched (the prologue models pre-ROI execution; the window
    /// schedule applies to the region of interest). Lane-equivalent to
    /// `SampledEngine::warm_frontend` on an independent engine.
    #[inline]
    pub fn warm_frontend(&mut self, instr: &Instr) {
        self.detailed.warm_frontend(instr);
    }

    fn close_window(&mut self) {
        if self.window_instr > 0 {
            for acc in &mut self.accs {
                acc.window_cpis
                    .push(acc.window_cycles / self.window_instr as f64);
                acc.window_cycles = 0.0;
            }
            self.window_instr = 0;
        }
    }

    /// Canonical boundary drain: drains the inner grid's lane spans and
    /// every lane's measured-cycles accumulator, mirroring
    /// `SampledEngine::boundary` so fused and per-frequency sampled runs
    /// keep folding at the same points.
    pub(crate) fn boundary(&mut self) {
        self.detailed.boundary();
        for acc in &mut self.accs {
            acc.measured_partials.push(acc.measured_cycles);
            acc.measured_cycles = 0.0;
        }
    }

    fn lane_meta(&self, acc: &SampledLane) -> SampleMeta {
        let n = acc.window_cpis.len();
        let mean = if n > 0 {
            acc.window_cpis.iter().sum::<f64>() / n as f64
        } else {
            0.0
        };
        let stddev = if n > 1 {
            let var = acc
                .window_cpis
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let rel_ci95 = if n > 1 && mean > 0.0 {
            1.96 * stddev / (n as f64).sqrt() / mean
        } else {
            0.0
        };
        SampleMeta {
            windows: n as u64,
            measured_instructions: self.measured_instr,
            detailed_instructions: self.detailed_instr,
            total_instructions: self.total,
            coverage: if self.total > 0 {
                self.detailed_instr as f64 / self.total as f64
            } else {
                0.0
            },
            cpi_mean: mean,
            cpi_stddev: stddev,
            rel_ci95,
        }
    }

    /// Processes one instruction, following the shared window schedule.
    #[inline]
    pub fn step(&mut self, instr: &Instr) {
        if self.pos < self.detailed_len {
            if self.pos < self.warm_len {
                self.detailed.step(instr);
            } else {
                for (i, b) in self.before.iter_mut().enumerate() {
                    *b = self.detailed.lane_cycles(i);
                }
                self.detailed.step(instr);
                for (i, acc) in self.accs.iter_mut().enumerate() {
                    let delta = self.detailed.lane_cycles(i) - self.before[i];
                    acc.measured_cycles += delta;
                    acc.window_cycles += delta;
                }
                self.measured_instr += 1;
                self.window_instr += 1;
            }
            self.detailed_instr += 1;
            if self.pos + 1 == self.detailed_len {
                self.close_window();
            }
        } else {
            self.detailed.warm_state(instr);
        }
        self.counts[instr.class.index() as usize] += 1;
        self.total += 1;
        self.pos += 1;
        if self.pos == self.interval {
            self.pos = 0;
        }
    }

    /// Finalises one extrapolated result per lane, bit-identical to
    /// independent [`crate::backend::SampledEngine`] runs at each
    /// frequency.
    pub fn finish(&mut self) -> Vec<SimResult> {
        self.close_window();
        let committed = ClassCounts::from_histogram(&self.counts);
        let total = committed.total();
        let det_results = self.detailed.finish();
        det_results
            .into_iter()
            .enumerate()
            .map(|(i, det)| {
                let meta = self.lane_meta(&self.accs[i]);
                sampled_windows_counter().add(meta.windows);
                sampled_detailed_counter().add(meta.detailed_instructions);
                sampled_fastforward_counter().add(total - meta.detailed_instructions);
                if meta.detailed_instructions >= total {
                    let mut result = det;
                    result.stats.fidelity = Fidelity::Sampled;
                    result.stats.sample = Some(meta);
                    return result;
                }
                let det_instr = det.stats.committed_instructions.max(1);
                let ratio = total as f64 / det_instr as f64;
                let cpi = if meta.measured_instructions > 0 {
                    self.accs[i].measured_cycles_total() / meta.measured_instructions as f64
                } else {
                    det.cycles / det_instr as f64
                };
                let cycles = cpi * total as f64;
                let freq_hz = self.detailed.lane_freq(i);
                let mut stats = scale_stats(&det.stats, ratio);
                let wrong_path = stats.speculative.saturating_sub(&stats.committed);
                stats.committed = committed;
                stats.committed_instructions = total;
                stats.speculative = committed.add(&wrong_path);
                stats.speculative_instructions = stats.speculative.total();
                stats.wrong_path_instructions = wrong_path.total();
                stats.freq_hz = freq_hz;
                stats.cycles = cycles;
                stats.seconds = cycles / freq_hz;
                stats.fidelity = Fidelity::Sampled;
                stats.sample = Some(meta);
                SimResult {
                    cycles,
                    seconds: stats.seconds,
                    stats,
                }
            })
            .collect()
    }
}

/// A tier-dispatching fused grid backend — the grid counterpart of
/// [`crate::backend::Backend`].
#[derive(Debug)]
pub enum GridBackend {
    /// The atomic/functional tier (one pass, per-lane time conversion).
    Atomic(Box<AtomicGridEngine>),
    /// The cycle-approximate reference tier (fused lanes).
    Approx(Box<GridEngine>),
    /// The SMARTS-style sampled tier (shared windows, per-lane deltas).
    Sampled(Box<SampledGridEngine>),
}

impl GridBackend {
    /// Builds the grid backend selected by `tier` over the frequency lanes
    /// `freqs_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `freqs_hz` is empty, any frequency is `<= 0`, or
    /// `threads == 0`.
    pub fn new(
        tier: TierConfig,
        cfg: &CoreConfig,
        freqs_hz: &[f64],
        threads: u32,
        seed: u64,
    ) -> Self {
        match tier.fidelity {
            Fidelity::Atomic => {
                GridBackend::Atomic(Box::new(AtomicGridEngine::new(cfg, freqs_hz, threads)))
            }
            Fidelity::Approx => GridBackend::Approx(Box::new(GridEngine::with_seed(
                cfg.clone(),
                freqs_hz,
                threads,
                seed,
            ))),
            Fidelity::Sampled => GridBackend::Sampled(Box::new(SampledGridEngine::new(
                cfg.clone(),
                freqs_hz,
                threads,
                seed,
                tier.sample,
            ))),
        }
    }

    /// The tier this backend implements.
    pub fn fidelity(&self) -> Fidelity {
        match self {
            GridBackend::Atomic(_) => Fidelity::Atomic,
            GridBackend::Approx(_) => Fidelity::Approx,
            GridBackend::Sampled(_) => Fidelity::Sampled,
        }
    }

    /// Number of frequency lanes.
    pub fn lane_count(&self) -> usize {
        match self {
            GridBackend::Atomic(b) => b.lane_count(),
            GridBackend::Approx(b) => b.lane_count(),
            GridBackend::Sampled(b) => b.lane_count(),
        }
    }

    /// Processes one instruction on every lane.
    #[inline]
    pub fn step(&mut self, instr: &Instr) {
        match self {
            GridBackend::Atomic(b) => b.step(instr),
            GridBackend::Approx(b) => b.step(instr),
            GridBackend::Sampled(b) => b.step(instr),
        }
    }

    /// Runs the startup prologue over `stream`: front-end-only functional
    /// warming of every lane's shared structures (see
    /// [`Engine::warm_frontend`]). A no-op on the atomic grid, whose
    /// class-histogram model carries no microarchitectural state — the
    /// stream is not even decoded. Drivers call this before the timed
    /// replay; each lane stays bit-identical to an independent engine
    /// given the same prologue.
    pub fn warm_prologue(&mut self, stream: impl Iterator<Item = Instr>) {
        match self {
            GridBackend::Atomic(_) => {}
            GridBackend::Approx(b) => {
                for instr in stream {
                    b.warm_frontend(&instr);
                }
            }
            GridBackend::Sampled(b) => {
                for instr in stream {
                    b.warm_frontend(&instr);
                }
            }
        }
    }

    /// Finalises one result per lane, in lane order.
    pub fn finish(&mut self) -> Vec<SimResult> {
        match self {
            GridBackend::Atomic(b) => b.finish(),
            GridBackend::Approx(b) => b.finish(),
            GridBackend::Sampled(b) => b.finish(),
        }
    }

    /// Drains the f64 accumulator spans at a canonical segment boundary
    /// (a no-op on the atomic tier) — the grid counterpart of
    /// [`crate::backend::Backend::boundary`].
    pub fn boundary(&mut self) {
        match self {
            GridBackend::Atomic(_) => {}
            GridBackend::Approx(b) => b.boundary(),
            GridBackend::Sampled(b) => b.boundary(),
        }
    }

    /// Runs the grid over an instruction stream with the per-tier obs span
    /// and grid/tier accounting; returns one result per lane. Drains at
    /// every canonical segment boundary, like [`Engine::run`].
    pub fn run_stream(&mut self, stream: impl Iterator<Item = Instr>) -> Vec<SimResult> {
        let _span = gemstone_obs::span::span(grid_span_name(self.fidelity()))
            .attr("lanes", self.lane_count());
        let seg = crate::segment::segment_instrs();
        let mut until = seg;
        for instr in stream {
            self.step(&instr);
            until -= 1;
            if until == 0 {
                self.boundary();
                until = seg;
            }
        }
        let results = self.finish();
        record_grid_run(
            self.fidelity(),
            results.len(),
            results[0].stats.committed_instructions,
        );
        results
    }

    /// Runs the grid over a planned trace with up to `workers` concurrent
    /// segment workers — segments × frequency lanes multiply: each
    /// detailed worker simulates every lane of its segment in one fused
    /// pass. Results, spans and `engine.grid.*` accounting are
    /// bit-identical to [`GridBackend::run_stream`] over `make_iter(0)`.
    /// The atomic grid (order-free) and the sampled grid (its fused
    /// window schedule is shared across lanes and cheap already) take the
    /// sequential path.
    pub fn run_segmented<I, F>(
        &mut self,
        plan: &crate::segment::SegmentPlan,
        workers: usize,
        make_iter: F,
    ) -> Vec<SimResult>
    where
        I: Iterator<Item = Instr>,
        F: Fn(u64) -> I + Sync,
    {
        match self {
            GridBackend::Approx(engine) => {
                let _span = gemstone_obs::span::span(grid_span_name(Fidelity::Approx))
                    .attr("lanes", engine.lane_count());
                crate::segment::run_segmented(engine.as_mut(), plan, workers, make_iter);
                let results = engine.finish();
                record_grid_run(
                    Fidelity::Approx,
                    results.len(),
                    results[0].stats.committed_instructions,
                );
                results
            }
            GridBackend::Atomic(_) | GridBackend::Sampled(_) => self.run_stream(make_iter(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, SampledEngine};
    use crate::configs::{cortex_a15_hw, cortex_a7_hw, ex5_big, Ex5Variant};
    use crate::core::Engine;
    use crate::instr::{BranchRef, MemRef};

    /// A mixed stream exercising every structural path (same shape as the
    /// backend tests: ALU, long-latency, memory, branches, exclusives).
    fn mixed_stream(n: usize) -> Vec<Instr> {
        (0..n)
            .map(|i| {
                let pc = (i as u64 % 2048) * 4;
                match i % 17 {
                    0..=3 => Instr::alu(InstrClass::IntAlu, pc),
                    4 => Instr::alu(InstrClass::IntMul, pc),
                    5 => Instr::alu(InstrClass::FpAlu, pc),
                    6..=8 => Instr::mem(
                        InstrClass::Load,
                        pc,
                        MemRef::load((i as u64).wrapping_mul(2654435761) % (8 << 20), 4),
                    ),
                    9 => Instr::mem(
                        InstrClass::Store,
                        pc,
                        MemRef::store((i as u64 * 64) % (1 << 20), 4).with_shared(i % 2 == 0),
                    ),
                    10 | 11 => Instr::branch(
                        InstrClass::Branch,
                        pc,
                        BranchRef {
                            static_id: (i % 32) as u32,
                            taken: i % 5 != 0,
                            target_page: (i as u64 / 64) % 16,
                        },
                    ),
                    12 => Instr::alu(InstrClass::Simd, pc),
                    13 => Instr::mem(
                        InstrClass::StoreExclusive,
                        pc,
                        MemRef::store(0x2000 + (i as u64 % 32) * 4, 4).with_shared(true),
                    ),
                    14 => Instr::alu(InstrClass::Nop, pc),
                    _ => Instr::alu(InstrClass::IntAlu, pc),
                }
            })
            .collect()
    }

    const FREQS: [f64; 4] = [0.6e9, 1.0e9, 1.4e9, 1.8e9];

    #[test]
    fn grid_bit_identical_to_per_frequency_runs() {
        for cfg in [cortex_a15_hw(), cortex_a7_hw(), ex5_big(Ex5Variant::Old)] {
            for threads in [1, 4] {
                let stream = mixed_stream(30_000);
                let mut grid = GridEngine::with_seed(cfg.clone(), &FREQS, threads, 0x5EED_CAFE);
                let fused = grid.run(stream.clone().into_iter());
                assert_eq!(fused.len(), FREQS.len());
                for (&f, r) in FREQS.iter().zip(&fused) {
                    let mut e = Engine::new(cfg.clone(), f, threads);
                    let expect = e.run(stream.clone().into_iter());
                    assert_eq!(r.cycles, expect.cycles, "{} @ {f}", cfg.name);
                    assert_eq!(r.seconds, expect.seconds);
                    assert_eq!(r.stats.gem5_stats_map(), expect.stats.gem5_stats_map());
                }
            }
        }
    }

    #[test]
    fn atomic_grid_bit_identical_to_per_frequency_runs() {
        let stream = mixed_stream(20_000);
        let cfg = cortex_a7_hw();
        let mut grid = GridBackend::new(TierConfig::atomic(), &cfg, &FREQS, 2, 0);
        let fused = grid.run_stream(stream.clone().into_iter());
        for (&f, r) in FREQS.iter().zip(&fused) {
            let mut b = Backend::new(TierConfig::atomic(), &cfg, f, 2, 0);
            let expect = b.run_stream(stream.clone().into_iter());
            assert_eq!(r.cycles, expect.cycles);
            assert_eq!(r.seconds, expect.seconds);
            assert_eq!(
                r.stats.committed.to_histogram(),
                expect.stats.committed.to_histogram()
            );
        }
    }

    #[test]
    fn sampled_grid_bit_identical_to_per_frequency_runs() {
        let stream = mixed_stream(50_000);
        let cfg = cortex_a15_hw();
        let params = SampleParams::default();
        let mut grid = SampledGridEngine::new(cfg.clone(), &FREQS, 1, 9, params);
        for i in &stream {
            grid.step(i);
        }
        let fused = grid.finish();
        for (&f, r) in FREQS.iter().zip(&fused) {
            let mut e = SampledEngine::new(cfg.clone(), f, 1, 9, params);
            for i in &stream {
                crate::backend::ExecBackend::step(&mut e, i);
            }
            let expect = crate::backend::ExecBackend::finish(&mut e);
            assert_eq!(r.cycles, expect.cycles, "sampled lane @ {f}");
            assert_eq!(r.seconds, expect.seconds);
            assert_eq!(r.stats.sample, expect.stats.sample);
            assert_eq!(r.stats.gem5_stats_map(), expect.stats.gem5_stats_map());
        }
    }

    #[test]
    fn single_lane_grid_equals_engine() {
        let stream = mixed_stream(10_000);
        let cfg = ex5_big(Ex5Variant::Fixed);
        let mut grid = GridEngine::new(cfg.clone(), &[1.0e9], 1);
        let fused = grid.run(stream.clone().into_iter());
        let mut e = Engine::new(cfg, 1.0e9, 1);
        let expect = e.run(stream.into_iter());
        assert_eq!(fused[0].cycles, expect.cycles);
        assert_eq!(
            fused[0].stats.gem5_stats_map(),
            expect.stats.gem5_stats_map()
        );
    }

    #[test]
    fn grid_finish_is_reentrant() {
        let cfg = cortex_a7_hw();
        let mut grid = GridEngine::new(cfg, &FREQS, 1);
        for i in mixed_stream(1_000) {
            grid.step(&i);
        }
        let r1 = grid.finish();
        for i in mixed_stream(1_000) {
            grid.step(&i);
        }
        let r2 = grid.finish();
        assert_eq!(r2[0].stats.committed_instructions, 2_000);
        assert!(r2[0].cycles > r1[0].cycles);
    }

    #[test]
    #[should_panic(expected = "at least one frequency lane")]
    fn empty_grid_rejected() {
        let _ = GridEngine::new(cortex_a7_hw(), &[], 1);
    }
}
