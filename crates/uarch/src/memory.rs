//! DRAM latency model.
//!
//! The paper's micro-benchmarks (Fig. 4) show the gem5 model's DRAM latency
//! to be **too low** relative to the hardware; this module keeps latency in
//! nanoseconds so the cycle cost correctly grows with core frequency —
//! which is what makes the per-frequency MPE trend of §IV ("the MPE …
//! becomes gradually more positive with frequency") emerge from the
//! mechanics instead of being scripted.
//!
//! # Examples
//!
//! ```
//! use gemstone_uarch::memory::DramConfig;
//!
//! let dram = DramConfig::new(100.0, 12.8);
//! // At 2 GHz a 100 ns access costs twice as many cycles as at 1 GHz.
//! let c1 = dram.access_cycles(1.0e9);
//! let c2 = dram.access_cycles(2.0e9);
//! assert!((c2 - 2.0 * c1).abs() < 1e-9);
//! ```

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Average random-access latency (row activation + CAS + controller),
    /// in nanoseconds.
    pub latency_ns: f64,
    /// Peak bandwidth in GB/s (used for a simple queueing penalty).
    pub bandwidth_gbps: f64,
    /// Additional latency per outstanding request when the bus saturates,
    /// in nanoseconds (simple contention model).
    pub contention_ns: f64,
}

impl DramConfig {
    /// Creates a DRAM model with the given latency and bandwidth and a
    /// default contention penalty of 5 ns.
    pub fn new(latency_ns: f64, bandwidth_gbps: f64) -> Self {
        DramConfig {
            latency_ns,
            bandwidth_gbps,
            contention_ns: 5.0,
        }
    }

    /// Cycles for one DRAM access at the given core frequency (Hz).
    pub fn access_cycles(&self, freq_hz: f64) -> f64 {
        self.latency_ns * 1e-9 * freq_hz
    }

    /// Cycles for one access when `pressure` ∈ `[0, 1]` of the bandwidth is
    /// already in use (adds the contention penalty proportionally).
    pub fn access_cycles_loaded(&self, freq_hz: f64, pressure: f64) -> f64 {
        let p = pressure.clamp(0.0, 1.0);
        (self.latency_ns + self.contention_ns * p * 4.0) * 1e-9 * freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_frequency() {
        let d = DramConfig::new(80.0, 12.8);
        assert!((d.access_cycles(1.0e9) - 80.0).abs() < 1e-9);
        assert!((d.access_cycles(0.2e9) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn contention_increases_latency() {
        let d = DramConfig::new(80.0, 12.8);
        let unloaded = d.access_cycles_loaded(1.0e9, 0.0);
        let loaded = d.access_cycles_loaded(1.0e9, 1.0);
        assert!(loaded > unloaded);
        assert!((unloaded - 80.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_is_clamped() {
        let d = DramConfig::new(80.0, 12.8);
        assert_eq!(
            d.access_cycles_loaded(1.0e9, 5.0),
            d.access_cycles_loaded(1.0e9, 1.0)
        );
        assert_eq!(
            d.access_cycles_loaded(1.0e9, -3.0),
            d.access_cycles_loaded(1.0e9, 0.0)
        );
    }
}
