//! Multi-fidelity execution backends.
//!
//! The engine's per-instruction hot loop sits behind the [`ExecBackend`]
//! trait with three tiers of increasing cost (the Atomic / Timing /
//! detailed-CPU organisation of gem5, cf. DESIGN.md §10):
//!
//! * **atomic** ([`AtomicEngine`]) — functional-only: every instruction
//!   retires at a fixed per-class cost and only architectural events are
//!   counted. No cache, TLB or branch-predictor state is walked, so the
//!   loop is orders of magnitude faster than the detailed engine. Valid
//!   for instruction-mix studies and fast-forwarding; its timing carries
//!   no micro-architectural signal.
//! * **approx** ([`crate::core::Engine`]) — the reference cycle-approximate
//!   tier modelling the full branch/TLB/cache/DRAM hierarchy.
//! * **sampled** ([`SampledEngine`]) — SMARTS-style systematic sampling:
//!   atomic fast-forward over most of the stream, a short detailed warming
//!   prefix before each measurement window, and detailed measurement
//!   windows whose CPI is extrapolated to the whole stream with a reported
//!   confidence metric ([`SampleMeta`]). Architectural (committed)
//!   instruction counts stay exact; micro-architectural event counts are
//!   scaled from the detailed fraction.
//!
//! Tier selection is a [`TierConfig`], settable from the environment
//! (`GEMSTONE_FIDELITY`, `GEMSTONE_SAMPLE_INTERVAL`, `GEMSTONE_SAMPLE_WINDOW`,
//! `GEMSTONE_SAMPLE_WARMUP`) or the `--fidelity` CLI flag, and is part of
//! the simulation-cache identity downstream.
//!
//! # Examples
//!
//! ```
//! use gemstone_uarch::backend::{Backend, ExecBackend, Fidelity, TierConfig};
//! use gemstone_uarch::configs::cortex_a15_hw;
//! use gemstone_uarch::instr::{Instr, InstrClass};
//!
//! let stream: Vec<Instr> = (0..10_000)
//!     .map(|i| Instr::alu(InstrClass::IntAlu, (i % 256) * 4))
//!     .collect();
//! let cfg = cortex_a15_hw();
//! let mut atomic = Backend::new(TierConfig::atomic(), &cfg, 1.0e9, 1, 0);
//! let r = atomic.run_stream(stream.into_iter());
//! assert_eq!(r.stats.committed_instructions, 10_000);
//! assert_eq!(r.stats.fidelity, Fidelity::Atomic);
//! ```

use crate::core::{CoreConfig, Engine, SimResult};
use crate::instr::{Instr, InstrClass};
use crate::segment::SegmentPlan;
use crate::stats::{ClassCounts, SimStats};
use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

/// Environment variable selecting the fidelity tier.
pub const FIDELITY_ENV: &str = "GEMSTONE_FIDELITY";
/// Environment variable: sampling period length in instructions.
pub const SAMPLE_INTERVAL_ENV: &str = "GEMSTONE_SAMPLE_INTERVAL";
/// Environment variable: detailed measurement window length in instructions.
pub const SAMPLE_WINDOW_ENV: &str = "GEMSTONE_SAMPLE_WINDOW";
/// Environment variable: detailed warming prefix length in instructions.
pub const SAMPLE_WARMUP_ENV: &str = "GEMSTONE_SAMPLE_WARMUP";

/// The available execution-fidelity tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fidelity {
    /// Fixed-cost functional execution, architectural events only.
    Atomic,
    /// The full cycle-approximate reference engine.
    #[default]
    Approx,
    /// SMARTS-style systematic sampling over the approx engine.
    Sampled,
}

impl Fidelity {
    /// Canonical lower-case tier name (`atomic` / `approx` / `sampled`).
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Atomic => "atomic",
            Fidelity::Approx => "approx",
            Fidelity::Sampled => "sampled",
        }
    }

    /// The obs span name used around a run at this tier.
    pub fn span_name(self) -> &'static str {
        match self {
            Fidelity::Atomic => "engine.run.atomic",
            Fidelity::Approx => "engine.run",
            Fidelity::Sampled => "engine.run.sampled",
        }
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "atomic" => Ok(Fidelity::Atomic),
            "approx" => Ok(Fidelity::Approx),
            "sampled" => Ok(Fidelity::Sampled),
            other => Err(format!(
                "unknown fidelity {other:?} (expected atomic, approx or sampled)"
            )),
        }
    }
}

/// SMARTS sampling geometry: each period of `interval` instructions starts
/// with `warmup` detailed (unmeasured) instructions, then `window` detailed
/// measured instructions; the rest of the period fast-forwards atomically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleParams {
    /// Period length U in instructions.
    pub interval: u64,
    /// Measured window length W in instructions.
    pub window: u64,
    /// Detailed warming prefix V in instructions (runs before each window).
    pub warmup: u64,
}

impl Default for SampleParams {
    fn default() -> Self {
        SampleParams {
            interval: 2_000,
            window: 300,
            warmup: 500,
        }
    }
}

impl SampleParams {
    /// Reads `GEMSTONE_SAMPLE_{INTERVAL,WINDOW,WARMUP}`, falling back to the
    /// defaults for unset or invalid values.
    pub fn from_env() -> Self {
        let d = SampleParams::default();
        let interval = gemstone_obs::env::parse_checked::<u64>(
            SAMPLE_INTERVAL_ENV,
            "a positive instruction count",
            "the default interval",
            |&n| n > 0,
        )
        .unwrap_or(d.interval);
        let window = gemstone_obs::env::parse_checked::<u64>(
            SAMPLE_WINDOW_ENV,
            "a positive instruction count",
            "the default window",
            |&n| n > 0,
        )
        .unwrap_or(d.window);
        let warmup = gemstone_obs::env::parse::<u64>(
            SAMPLE_WARMUP_ENV,
            "an instruction count",
            "the default warmup",
        )
        .unwrap_or(d.warmup);
        SampleParams {
            interval,
            window,
            warmup,
        }
    }

    /// Instructions simulated in detail per period (warmup + window, clamped
    /// to the period length).
    pub fn detailed_len(self) -> u64 {
        (self.warmup + self.window).min(self.interval.max(1))
    }

    /// Whether a segment boundary may be placed *before* instruction
    /// `index` of a sampled-tier run: boundaries must never land inside a
    /// measurement window, so each window's f64 accumulation stays within
    /// one segment and per-window CPIs splice whole. Rejected candidates
    /// merge into the previous segment
    /// (see [`crate::segment::SegmentPlan::with_boundary_filter`]).
    pub fn segment_boundary_allowed(self, index: u64) -> bool {
        let interval = self.interval.max(1);
        let detailed = self.detailed_len();
        let warm = self.warmup.min(detailed);
        let pos = index % interval;
        pos < warm || pos >= detailed
    }
}

/// A fidelity tier plus its sampling geometry (only meaningful for
/// [`Fidelity::Sampled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierConfig {
    /// The selected tier.
    pub fidelity: Fidelity,
    /// Sampling geometry (ignored unless `fidelity == Sampled`).
    pub sample: SampleParams,
}

impl TierConfig {
    /// The atomic/functional tier.
    pub fn atomic() -> Self {
        TierConfig {
            fidelity: Fidelity::Atomic,
            sample: SampleParams::default(),
        }
    }

    /// The cycle-approximate reference tier (the default).
    pub fn approx() -> Self {
        TierConfig::default()
    }

    /// The sampled tier with the given geometry.
    pub fn sampled(sample: SampleParams) -> Self {
        TierConfig {
            fidelity: Fidelity::Sampled,
            sample,
        }
    }

    /// Tier selection from `GEMSTONE_FIDELITY` / `GEMSTONE_SAMPLE_*`
    /// (approx when unset).
    pub fn from_env() -> Self {
        let fidelity = gemstone_obs::env::parse_checked::<Fidelity>(
            FIDELITY_ENV,
            "one of atomic, approx or sampled",
            "approx",
            |_| true,
        )
        .unwrap_or_default();
        TierConfig {
            fidelity,
            sample: SampleParams::from_env(),
        }
    }

    /// Human-readable tier description: the tier name, plus the sampling
    /// geometry when it matters (`sampled (interval 2000, window 300,
    /// warmup 500)`).
    pub fn describe(&self) -> String {
        match self.fidelity {
            Fidelity::Sampled => format!(
                "sampled (interval {}, window {}, warmup {})",
                self.sample.interval, self.sample.window, self.sample.warmup
            ),
            other => other.name().to_string(),
        }
    }

    /// Canonical form for cache identity: sampling parameters only
    /// distinguish configurations on the sampled tier, so atomic/approx
    /// collapse onto the default geometry (a `GEMSTONE_SAMPLE_*` change
    /// must not churn non-sampled cache keys).
    pub fn canonical(self) -> Self {
        if self.fidelity == Fidelity::Sampled {
            self
        } else {
            TierConfig {
                fidelity: self.fidelity,
                sample: SampleParams::default(),
            }
        }
    }
}

impl fmt::Display for TierConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Sampling evidence attached to a sampled-tier [`SimStats`]: how much of
/// the stream was measured and how tight the CPI estimate is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleMeta {
    /// Number of measurement windows that contributed a CPI observation.
    pub windows: u64,
    /// Instructions inside measurement windows.
    pub measured_instructions: u64,
    /// Instructions simulated in detail (warming + measured).
    pub detailed_instructions: u64,
    /// Total instructions in the stream.
    pub total_instructions: u64,
    /// Detailed fraction of the stream in `[0, 1]`.
    pub coverage: f64,
    /// Mean per-window CPI.
    pub cpi_mean: f64,
    /// Sample standard deviation of per-window CPI (0 with < 2 windows).
    pub cpi_stddev: f64,
    /// Relative half-width of the 95% confidence interval on the mean CPI
    /// (`1.96 · stderr / mean`; 0 with < 2 windows — no variance evidence).
    pub rel_ci95: f64,
}

/// A pluggable per-instruction execution backend. All tiers share the
/// step/finish shape of [`Engine`]: `finish` is reentrant and the backend
/// keeps accumulating afterwards.
pub trait ExecBackend {
    /// The tier this backend implements.
    fn fidelity(&self) -> Fidelity;

    /// Processes one instruction.
    fn step(&mut self, instr: &Instr);

    /// Finalises accumulated state into a [`SimResult`].
    fn finish(&mut self) -> SimResult;
}

impl ExecBackend for Engine {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Approx
    }

    fn step(&mut self, instr: &Instr) {
        Engine::step(self, instr);
    }

    fn finish(&mut self) -> SimResult {
        Engine::finish(self)
    }
}

fn tier_runs_counter(f: Fidelity) -> &'static gemstone_obs::Counter {
    static ATOMIC: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    static APPROX: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    static SAMPLED: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    let (slot, name) = match f {
        Fidelity::Atomic => (&ATOMIC, "engine.tier.atomic.runs"),
        Fidelity::Approx => (&APPROX, "engine.tier.approx.runs"),
        Fidelity::Sampled => (&SAMPLED, "engine.tier.sampled.runs"),
    };
    slot.get_or_init(|| gemstone_obs::Registry::global().counter(name))
}

fn tier_instructions_counter(f: Fidelity) -> &'static gemstone_obs::Counter {
    static ATOMIC: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    static APPROX: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    static SAMPLED: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    let (slot, name) = match f {
        Fidelity::Atomic => (&ATOMIC, "engine.tier.atomic.instructions"),
        Fidelity::Approx => (&APPROX, "engine.tier.approx.instructions"),
        Fidelity::Sampled => (&SAMPLED, "engine.tier.sampled.instructions"),
    };
    slot.get_or_init(|| gemstone_obs::Registry::global().counter(name))
}

pub(crate) fn sampled_windows_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| gemstone_obs::Registry::global().counter("engine.tier.sampled.windows"))
}

pub(crate) fn sampled_detailed_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        gemstone_obs::Registry::global().counter("engine.tier.sampled.detailed_instructions")
    })
}

pub(crate) fn sampled_fastforward_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        gemstone_obs::Registry::global().counter("engine.tier.sampled.fastforward_instructions")
    })
}

/// Records a completed run at `fidelity` covering `instructions` committed
/// instructions in the `engine.tier.*` obs counters. Called by every tier
/// entry point ([`Backend::run_stream`] and the trace replay in
/// `gemstone-workloads`).
pub fn record_tier_run(fidelity: Fidelity, instructions: u64) {
    tier_runs_counter(fidelity).inc();
    tier_instructions_counter(fidelity).add(instructions);
}

/// The atomic/functional tier: every instruction retires at a fixed
/// per-class cost, and only architectural (committed) events are counted.
#[derive(Debug, Clone)]
pub struct AtomicEngine {
    freq_hz: f64,
    costs: [f64; InstrClass::COUNT],
    counts: [u64; InstrClass::COUNT],
    fp_counted_as_simd: bool,
    split_l2_tlb: bool,
}

impl AtomicEngine {
    /// Builds an atomic engine for `cfg` at `freq_hz` with `threads`
    /// software threads (threads only scale the fixed barrier cost).
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz <= 0` or `threads == 0`.
    pub fn new(cfg: &CoreConfig, freq_hz: f64, threads: u32) -> Self {
        assert!(freq_hz > 0.0, "frequency must be positive");
        assert!(threads > 0, "at least one thread");
        AtomicEngine {
            freq_hz,
            costs: Self::cost_table(cfg, threads),
            counts: [0; InstrClass::COUNT],
            fp_counted_as_simd: cfg.fp_counted_as_simd,
            split_l2_tlb: cfg.l2tlb.is_split(),
        }
    }

    /// The fixed per-class retire cost in cycles: the issue cost plus the
    /// exposed long-latency / serialisation component the detailed engine
    /// charges unconditionally for that class. Memory-hierarchy and
    /// branch-mispredict stalls are state-dependent and deliberately absent.
    fn cost_table(cfg: &CoreConfig, threads: u32) -> [f64; InstrClass::COUNT] {
        let eff_width = f64::from(cfg.width) * cfg.issue_efficiency;
        let issue = 1.0 / eff_width.max(0.25);
        let sync = 1.0 + f64::from(threads - 1) * cfg.barrier_sync_factor;
        let mut costs = [issue; InstrClass::COUNT];
        let mut extra = |class: InstrClass, c: f64| {
            costs[class.index() as usize] += c;
        };
        extra(InstrClass::IntMul, cfg.op_extra.int_mul * cfg.stall.execute);
        extra(InstrClass::IntDiv, cfg.op_extra.int_div * cfg.stall.execute);
        extra(InstrClass::FpAlu, cfg.op_extra.fp_alu * cfg.stall.execute);
        extra(InstrClass::FpDiv, cfg.op_extra.fp_div * cfg.stall.execute);
        extra(InstrClass::Simd, cfg.op_extra.simd * cfg.stall.execute);
        extra(InstrClass::LoadExclusive, cfg.exclusive_cost * 0.5);
        extra(InstrClass::StoreExclusive, cfg.exclusive_cost);
        extra(InstrClass::Barrier, cfg.barrier_cost * sync);
        costs
    }

    /// Retires a whole class histogram at once — the fast path for packed
    /// traces, bit-identical to stepping each instruction.
    pub fn absorb_histogram(&mut self, hist: &[u64; InstrClass::COUNT]) {
        for (count, add) in self.counts.iter_mut().zip(hist) {
            *count += add;
        }
    }

    /// Committed instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl ExecBackend for AtomicEngine {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Atomic
    }

    #[inline]
    fn step(&mut self, instr: &Instr) {
        self.counts[instr.class.index() as usize] += 1;
    }

    fn finish(&mut self) -> SimResult {
        let cycles: f64 = self
            .counts
            .iter()
            .zip(&self.costs)
            .map(|(&n, &c)| n as f64 * c)
            .sum();
        let committed = ClassCounts::from_histogram(&self.counts);
        let stats = SimStats {
            freq_hz: self.freq_hz,
            cycles,
            seconds: cycles / self.freq_hz,
            committed,
            committed_instructions: committed.total(),
            // No speculation is modelled: speculative == architectural.
            speculative: committed,
            speculative_instructions: committed.total(),
            fidelity: Fidelity::Atomic,
            fp_counted_as_simd: self.fp_counted_as_simd,
            split_l2_tlb: self.split_l2_tlb,
            ..SimStats::default()
        };
        SimResult {
            cycles,
            seconds: stats.seconds,
            stats,
        }
    }
}

/// The SMARTS-style sampled tier: systematic periods of atomic
/// fast-forward, detailed warming and detailed measurement over an inner
/// cycle-approximate [`Engine`], with results extrapolated to the whole
/// stream.
#[derive(Debug, Clone)]
pub struct SampledEngine {
    params: SampleParams,
    interval: u64,
    detailed_len: u64,
    warm_len: u64,
    freq_hz: f64,
    detailed: Engine,
    counts: [u64; InstrClass::COUNT],
    /// Position inside the current period, in `[0, interval)`.
    pos: u64,
    total: u64,
    detailed_instr: u64,
    measured_instr: u64,
    /// Measured cycles since the last canonical boundary drain; earlier
    /// spans live in `measured_partials` (same discipline as
    /// [`Engine`]'s cycle accumulators — see [`SampledEngine::boundary`]).
    measured_cycles: f64,
    measured_partials: Vec<f64>,
    window_instr: u64,
    window_cycles: f64,
    window_cpis: Vec<f64>,
}

impl SampledEngine {
    /// Builds a sampled engine; the detailed windows run on an inner
    /// [`Engine`] built with exactly the given configuration and seed, so a
    /// fully-detailed sampled run is bit-identical to the approx tier.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz <= 0` or `threads == 0`.
    pub fn new(
        cfg: CoreConfig,
        freq_hz: f64,
        threads: u32,
        seed: u64,
        params: SampleParams,
    ) -> Self {
        let interval = params.interval.max(1);
        let detailed_len = params.detailed_len();
        SampledEngine {
            params,
            interval,
            detailed_len,
            warm_len: params.warmup.min(detailed_len),
            freq_hz,
            detailed: Engine::with_seed(cfg, freq_hz, threads, seed),
            counts: [0; InstrClass::COUNT],
            pos: 0,
            total: 0,
            detailed_instr: 0,
            measured_instr: 0,
            measured_cycles: 0.0,
            measured_partials: Vec::new(),
            window_instr: 0,
            window_cycles: 0.0,
            window_cpis: Vec::new(),
        }
    }

    /// The sampling geometry in use.
    pub fn params(&self) -> SampleParams {
        self.params
    }

    /// Functional warming for segment snapshots: advances the inner
    /// engine's state and the period position, recording nothing. An
    /// engine warmed over a prefix is state-identical to one that ran
    /// the sampled schedule over it (detailed steps advance state exactly
    /// like warming does), so segment start snapshots come from one
    /// warming pass regardless of where the schedule's phases fall.
    pub(crate) fn warm_advance(&mut self, instr: &Instr) {
        self.detailed.warm_state(instr);
        self.pos += 1;
        if self.pos == self.interval {
            self.pos = 0;
        }
    }

    /// Startup-prologue warming: advances the inner engine's front-end
    /// state only (see [`Engine::warm_frontend`]), leaving the sampling
    /// schedule position untouched — the prologue models pre-ROI
    /// execution, the window schedule applies to the region of interest.
    #[inline]
    pub fn warm_frontend(&mut self, instr: &Instr) {
        self.detailed.warm_frontend(instr);
    }

    /// Canonical boundary drain: drains the inner engine's span and the
    /// measured-cycles accumulator. Driven at every global multiple of
    /// [`crate::segment::segment_instrs`] by sequential and segmented
    /// runs alike, so the partials lists — and therefore every f64 fold —
    /// are identical between them.
    pub(crate) fn boundary(&mut self) {
        self.detailed.boundary();
        self.measured_partials.push(self.measured_cycles);
        self.measured_cycles = 0.0;
    }

    /// Splices a finished segment into this (fresh) master engine, in
    /// segment order. Segment boundaries never land inside a measurement
    /// window (see [`SampleParams::segment_boundary_allowed`]), so
    /// per-window CPIs concatenate whole.
    pub(crate) fn absorb_segment(&mut self, seg: &SampledEngine) {
        self.detailed.absorb_segment(&seg.detailed);
        for (mine, theirs) in self.counts.iter_mut().zip(&seg.counts) {
            *mine += theirs;
        }
        self.pos = seg.pos;
        self.total += seg.total;
        self.detailed_instr += seg.detailed_instr;
        self.measured_instr += seg.measured_instr;
        self.measured_partials
            .extend(seg.measured_partials.iter().copied());
        self.measured_cycles += seg.measured_cycles;
        self.window_instr += seg.window_instr;
        self.window_cycles += seg.window_cycles;
        self.window_cpis.extend(seg.window_cpis.iter().copied());
    }

    /// Total measured cycles: the in-order fold of the drained spans plus
    /// the open one.
    fn measured_cycles_total(&self) -> f64 {
        let mut total = 0.0;
        for p in &self.measured_partials {
            total += p;
        }
        total + self.measured_cycles
    }

    /// Debug-build lockstep check against a sequential reference (the
    /// segmented runner's splice verification).
    #[cfg(debug_assertions)]
    pub(crate) fn debug_assert_matches(&self, reference: &SampledEngine) {
        self.detailed.debug_assert_matches(&reference.detailed);
        assert_eq!(self.counts, reference.counts, "class counts diverged");
        assert_eq!(
            (
                self.pos,
                self.total,
                self.detailed_instr,
                self.measured_instr
            ),
            (
                reference.pos,
                reference.total,
                reference.detailed_instr,
                reference.measured_instr
            ),
            "sampled schedule position diverged"
        );
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&self.measured_partials),
            bits(&reference.measured_partials),
            "measured partials diverged"
        );
        assert_eq!(
            self.measured_cycles.to_bits(),
            reference.measured_cycles.to_bits()
        );
        assert_eq!(
            bits(&self.window_cpis),
            bits(&reference.window_cpis),
            "window CPIs diverged"
        );
        assert_eq!(self.window_instr, reference.window_instr);
        assert_eq!(
            self.window_cycles.to_bits(),
            reference.window_cycles.to_bits()
        );
    }

    fn close_window(&mut self) {
        if self.window_instr > 0 {
            self.window_cpis
                .push(self.window_cycles / self.window_instr as f64);
            self.window_instr = 0;
            self.window_cycles = 0.0;
        }
    }

    fn sample_meta(&self) -> SampleMeta {
        let n = self.window_cpis.len();
        let mean = if n > 0 {
            self.window_cpis.iter().sum::<f64>() / n as f64
        } else {
            0.0
        };
        let stddev = if n > 1 {
            let var = self
                .window_cpis
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (n - 1) as f64;
            var.sqrt()
        } else {
            0.0
        };
        let rel_ci95 = if n > 1 && mean > 0.0 {
            1.96 * stddev / (n as f64).sqrt() / mean
        } else {
            0.0
        };
        SampleMeta {
            windows: n as u64,
            measured_instructions: self.measured_instr,
            detailed_instructions: self.detailed_instr,
            total_instructions: self.total,
            coverage: if self.total > 0 {
                self.detailed_instr as f64 / self.total as f64
            } else {
                0.0
            },
            cpi_mean: mean,
            cpi_stddev: stddev,
            rel_ci95,
        }
    }
}

impl ExecBackend for SampledEngine {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Sampled
    }

    #[inline]
    fn step(&mut self, instr: &Instr) {
        if self.pos < self.detailed_len {
            if self.pos < self.warm_len {
                self.detailed.step(instr);
            } else {
                // Deltas are measured against the *open* span: it is
                // identical between sequential and segment-local engines
                // (both drain at the same global indices), while the folded
                // total's base — and so its rounding — is not.
                let before = self.detailed.open_cycles();
                self.detailed.step(instr);
                let delta = self.detailed.open_cycles() - before;
                self.measured_cycles += delta;
                self.measured_instr += 1;
                self.window_cycles += delta;
                self.window_instr += 1;
            }
            self.detailed_instr += 1;
            if self.pos + 1 == self.detailed_len {
                self.close_window();
            }
        } else {
            // Fast-forward phase: no timing, but functionally warm the
            // long-lived microarchitectural state (caches, TLBs, branch
            // predictor) so the next window measures live state instead of
            // state frozen at the end of the previous one. Skipping this
            // biases measured CPI upwards by 5-20 % on cache-heavy
            // workloads.
            self.detailed.warm_state(instr);
        }
        self.counts[instr.class.index() as usize] += 1;
        self.total += 1;
        self.pos += 1;
        if self.pos == self.interval {
            self.pos = 0;
        }
    }

    fn finish(&mut self) -> SimResult {
        // A stream ending mid-window still contributes its partial CPI.
        self.close_window();
        let meta = self.sample_meta();
        let committed = ClassCounts::from_histogram(&self.counts);
        let total = committed.total();
        let det = self.detailed.finish();

        sampled_windows_counter().add(meta.windows);
        sampled_detailed_counter().add(meta.detailed_instructions);
        sampled_fastforward_counter().add(total - meta.detailed_instructions);

        if meta.detailed_instructions >= total {
            // Everything ran in detail: the approx result, exactly.
            let mut result = det;
            result.stats.fidelity = Fidelity::Sampled;
            result.stats.sample = Some(meta);
            return result;
        }

        let det_instr = det.stats.committed_instructions.max(1);
        let ratio = total as f64 / det_instr as f64;
        // CPI from measurement windows only (the warming prefix is biased
        // cold); fall back to the whole detailed fraction without windows.
        let cpi = if meta.measured_instructions > 0 {
            self.measured_cycles_total() / meta.measured_instructions as f64
        } else {
            det.cycles / det_instr as f64
        };
        let cycles = cpi * total as f64;

        let mut stats = scale_stats(&det.stats, ratio);
        // Architectural counts are exact: every instruction was counted.
        let wrong_path = stats.speculative.saturating_sub(&stats.committed);
        stats.committed = committed;
        stats.committed_instructions = total;
        stats.speculative = committed.add(&wrong_path);
        stats.speculative_instructions = stats.speculative.total();
        stats.wrong_path_instructions = wrong_path.total();
        stats.freq_hz = self.freq_hz;
        stats.cycles = cycles;
        stats.seconds = cycles / self.freq_hz;
        stats.fidelity = Fidelity::Sampled;
        stats.sample = Some(meta);
        SimResult {
            cycles,
            seconds: stats.seconds,
            stats,
        }
    }
}

/// Extrapolates the detailed fraction's statistics to the whole stream:
/// event counts and stall cycles scale by `ratio`
/// (`total / detailed_instructions`); configuration flags pass through.
pub(crate) fn scale_stats(det: &SimStats, ratio: f64) -> SimStats {
    let s = |v: u64| (v as f64 * ratio).round() as u64;
    SimStats {
        freq_hz: det.freq_hz,
        cycles: det.cycles * ratio,
        seconds: det.seconds * ratio,
        committed_instructions: s(det.committed_instructions),
        speculative_instructions: s(det.speculative_instructions),
        wrong_path_instructions: s(det.wrong_path_instructions),
        committed: det.committed.map(s),
        speculative: det.speculative.map(s),
        unaligned_loads: s(det.unaligned_loads),
        unaligned_stores: s(det.unaligned_stores),
        strex_fails: s(det.strex_fails),
        branch: det.branch.map(s),
        itlb: det.itlb.map(s),
        dtlb: det.dtlb.map(s),
        dtlb_miss_loads: s(det.dtlb_miss_loads),
        dtlb_miss_stores: s(det.dtlb_miss_stores),
        l1i: det.l1i.map(s),
        l1i_reported_accesses: s(det.l1i_reported_accesses),
        l1d: det.l1d.map(s),
        l2: det.l2.map(s),
        dram_accesses: s(det.dram_accesses),
        dram_reads: s(det.dram_reads),
        dram_writes: s(det.dram_writes),
        snoops: s(det.snoops),
        nonspec_stalls: s(det.nonspec_stalls),
        stalls: crate::stats::StallCycles {
            mispredict: det.stalls.mispredict * ratio,
            fetch: det.stalls.fetch * ratio,
            fetch_tlb: det.stalls.fetch_tlb * ratio,
            memory: det.stalls.memory * ratio,
            data_tlb: det.stalls.data_tlb * ratio,
            serialization: det.stalls.serialization * ratio,
            execute: det.stalls.execute * ratio,
        },
        fidelity: det.fidelity,
        sample: det.sample,
        fp_counted_as_simd: det.fp_counted_as_simd,
        split_l2_tlb: det.split_l2_tlb,
    }
}

/// A concrete tier-dispatching backend, avoiding dynamic dispatch in the
/// per-instruction hot loop.
#[derive(Debug)]
pub enum Backend {
    /// The atomic/functional tier.
    Atomic(Box<AtomicEngine>),
    /// The cycle-approximate reference tier.
    Approx(Box<Engine>),
    /// The SMARTS-style sampled tier.
    Sampled(Box<SampledEngine>),
}

impl Backend {
    /// Builds the backend selected by `tier` over the given core
    /// configuration, frequency, thread count and seed.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz <= 0` or `threads == 0`.
    pub fn new(tier: TierConfig, cfg: &CoreConfig, freq_hz: f64, threads: u32, seed: u64) -> Self {
        match tier.fidelity {
            Fidelity::Atomic => Backend::Atomic(Box::new(AtomicEngine::new(cfg, freq_hz, threads))),
            Fidelity::Approx => Backend::Approx(Box::new(Engine::with_seed(
                cfg.clone(),
                freq_hz,
                threads,
                seed,
            ))),
            Fidelity::Sampled => Backend::Sampled(Box::new(SampledEngine::new(
                cfg.clone(),
                freq_hz,
                threads,
                seed,
                tier.sample,
            ))),
        }
    }

    /// Drains the f64 accumulator spans at a canonical segment boundary
    /// (a no-op on the atomic tier, whose results are order-free).
    /// Sequential drivers call this every
    /// [`crate::segment::segment_instrs`] instructions — the same global
    /// indices the segmented runner drains at, which is what makes the
    /// two bit-identical.
    pub fn boundary(&mut self) {
        match self {
            Backend::Atomic(_) => {}
            Backend::Approx(b) => b.boundary(),
            Backend::Sampled(b) => b.boundary(),
        }
    }

    /// Runs the startup prologue over `stream`: front-end-only functional
    /// warming (branch predictor, ITLB, L1I — see
    /// [`Engine::warm_frontend`]) modelling the pre-ROI execution every
    /// real measurement performs before its timed region. A no-op on the
    /// atomic tier, whose class-histogram model carries no
    /// microarchitectural state — the stream is not even decoded.
    /// Drivers call this once, before [`Backend::run_stream`] or
    /// [`Backend::run_segmented`]; both timed paths then stay
    /// bit-identical to each other over the warmed state.
    pub fn warm_prologue(&mut self, stream: impl Iterator<Item = Instr>) {
        match self {
            Backend::Atomic(_) => {}
            Backend::Approx(engine) => {
                for instr in stream {
                    engine.warm_frontend(&instr);
                }
            }
            Backend::Sampled(engine) => {
                for instr in stream {
                    engine.warm_frontend(&instr);
                }
            }
        }
    }

    /// Runs the backend over an instruction stream, with the per-tier obs
    /// span and `engine.tier.*` accounting.
    pub fn run_stream(&mut self, stream: impl Iterator<Item = Instr>) -> SimResult {
        if let Backend::Approx(engine) = self {
            // Engine::run keeps its own span, counters and drain cadence.
            let result = engine.run(stream);
            record_tier_run(Fidelity::Approx, result.stats.committed_instructions);
            return result;
        }
        let _span = gemstone_obs::span::span(self.fidelity().span_name());
        let seg = crate::segment::segment_instrs();
        let mut until = seg;
        for instr in stream {
            self.step(&instr);
            until -= 1;
            if until == 0 {
                self.boundary();
                until = seg;
            }
        }
        let result = self.finish();
        record_tier_run(self.fidelity(), result.stats.committed_instructions);
        result
    }

    /// The canonical segment plan for this backend over a `len`-instruction
    /// trace: segments of [`crate::segment::segment_instrs`] instructions,
    /// with the sampled tier vetoing boundaries that would land inside a
    /// measurement window (rejected candidates merge into the previous
    /// segment; accumulator drains still happen at every candidate, so the
    /// filter never affects results — only where snapshots are cut).
    pub fn segment_plan(&self, len: u64) -> SegmentPlan {
        let seg = crate::segment::segment_instrs();
        match self {
            Backend::Sampled(b) => {
                let params = b.params();
                SegmentPlan::with_boundary_filter(len, seg, |idx| {
                    params.segment_boundary_allowed(idx)
                })
            }
            _ => SegmentPlan::new(len, seg),
        }
    }

    /// Runs the backend over a planned trace with up to `workers`
    /// concurrent segment workers. Results, spans and `engine.tier.*`
    /// accounting are bit-identical to [`Backend::run_stream`] over
    /// `make_iter(0)`; the atomic tier — order-free and already nearly
    /// free — takes the sequential path.
    pub fn run_segmented<I, F>(
        &mut self,
        plan: &SegmentPlan,
        workers: usize,
        make_iter: F,
    ) -> SimResult
    where
        I: Iterator<Item = Instr>,
        F: Fn(u64) -> I + Sync,
    {
        match self {
            Backend::Atomic(_) => self.run_stream(make_iter(0)),
            Backend::Approx(engine) => {
                let result = engine.run_segmented(plan, workers, make_iter);
                record_tier_run(Fidelity::Approx, result.stats.committed_instructions);
                result
            }
            Backend::Sampled(engine) => {
                let _span = gemstone_obs::span::span(Fidelity::Sampled.span_name());
                crate::segment::run_segmented(engine.as_mut(), plan, workers, make_iter);
                let result = engine.finish();
                record_tier_run(Fidelity::Sampled, result.stats.committed_instructions);
                result
            }
        }
    }
}

impl ExecBackend for Backend {
    fn fidelity(&self) -> Fidelity {
        match self {
            Backend::Atomic(_) => Fidelity::Atomic,
            Backend::Approx(_) => Fidelity::Approx,
            Backend::Sampled(_) => Fidelity::Sampled,
        }
    }

    #[inline]
    fn step(&mut self, instr: &Instr) {
        match self {
            Backend::Atomic(b) => b.step(instr),
            Backend::Approx(b) => Engine::step(b, instr),
            Backend::Sampled(b) => b.step(instr),
        }
    }

    fn finish(&mut self) -> SimResult {
        match self {
            Backend::Atomic(b) => b.finish(),
            Backend::Approx(b) => Engine::finish(b),
            Backend::Sampled(b) => b.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{cortex_a15_hw, cortex_a7_hw, ex5_big, Ex5Variant};
    use crate::instr::{BranchRef, MemRef};

    /// A mixed stream exercising every structural path: ALU, long-latency,
    /// loads/stores over a sliding footprint, biased branches, exclusives
    /// and barriers.
    fn mixed_stream(n: usize) -> Vec<Instr> {
        (0..n)
            .map(|i| {
                let pc = (i as u64 % 2048) * 4;
                match i % 16 {
                    0..=4 => Instr::alu(InstrClass::IntAlu, pc),
                    5 => Instr::alu(InstrClass::IntMul, pc),
                    6 => Instr::alu(InstrClass::FpAlu, pc),
                    7..=9 => Instr::mem(
                        InstrClass::Load,
                        pc,
                        MemRef::load((i as u64).wrapping_mul(2654435761) % (8 << 20), 4),
                    ),
                    10 => Instr::mem(
                        InstrClass::Store,
                        pc,
                        MemRef::store((i as u64 * 64) % (1 << 20), 4),
                    ),
                    11 | 12 => Instr::branch(
                        InstrClass::Branch,
                        pc,
                        BranchRef {
                            static_id: (i % 32) as u32,
                            taken: i % 5 != 0,
                            target_page: (i as u64 / 64) % 16,
                        },
                    ),
                    13 => Instr::alu(InstrClass::Simd, pc),
                    14 => Instr::alu(InstrClass::Nop, pc),
                    _ => Instr::alu(InstrClass::IntAlu, pc),
                }
            })
            .collect()
    }

    #[test]
    fn fidelity_parse_and_display() {
        assert_eq!("atomic".parse::<Fidelity>().unwrap(), Fidelity::Atomic);
        assert_eq!(" Approx ".parse::<Fidelity>().unwrap(), Fidelity::Approx);
        assert_eq!("SAMPLED".parse::<Fidelity>().unwrap(), Fidelity::Sampled);
        assert!("detailed".parse::<Fidelity>().is_err());
        assert_eq!(Fidelity::Sampled.to_string(), "sampled");
        assert_eq!(Fidelity::default(), Fidelity::Approx);
    }

    #[test]
    fn canonical_collapses_sample_params_for_non_sampled_tiers() {
        let odd = SampleParams {
            interval: 99,
            window: 9,
            warmup: 9,
        };
        let approx = TierConfig {
            fidelity: Fidelity::Approx,
            sample: odd,
        };
        assert_eq!(approx.canonical(), TierConfig::approx());
        let sampled = TierConfig::sampled(odd);
        assert_eq!(sampled.canonical(), sampled);
    }

    #[test]
    fn atomic_matches_approx_architectural_counts() {
        let stream = mixed_stream(50_000);
        let cfg = cortex_a15_hw();
        let mut atomic = Backend::new(TierConfig::atomic(), &cfg, 1.0e9, 1, 0);
        let ra = atomic.run_stream(stream.clone().into_iter());
        let mut approx = Backend::new(TierConfig::approx(), &cfg, 1.0e9, 1, 0);
        let rx = approx.run_stream(stream.into_iter());
        assert_eq!(
            ra.stats.committed.to_histogram(),
            rx.stats.committed.to_histogram(),
            "atomic committed counts must be bit-identical to approx"
        );
        assert_eq!(
            ra.stats.committed_instructions,
            rx.stats.committed_instructions
        );
        assert_eq!(ra.stats.fidelity, Fidelity::Atomic);
        assert_eq!(rx.stats.fidelity, Fidelity::Approx);
    }

    #[test]
    fn atomic_histogram_equals_stepping() {
        let stream = mixed_stream(10_000);
        let cfg = cortex_a7_hw();
        let mut stepped = AtomicEngine::new(&cfg, 1.0e9, 1);
        for i in &stream {
            stepped.step(i);
        }
        let mut hist = [0u64; InstrClass::COUNT];
        for i in &stream {
            hist[i.class.index() as usize] += 1;
        }
        let mut absorbed = AtomicEngine::new(&cfg, 1.0e9, 1);
        absorbed.absorb_histogram(&hist);
        let a = stepped.finish();
        let b = absorbed.finish();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(
            a.stats.committed.to_histogram(),
            b.stats.committed.to_histogram()
        );
    }

    #[test]
    fn sampled_architectural_counts_exact_and_ipc_close() {
        let stream = mixed_stream(200_000);
        let cfg = cortex_a15_hw();
        let mut approx = Backend::new(TierConfig::approx(), &cfg, 1.0e9, 1, 7);
        let rx = approx.run_stream(stream.clone().into_iter());
        let mut sampled = Backend::new(
            TierConfig::sampled(SampleParams::default()),
            &cfg,
            1.0e9,
            1,
            7,
        );
        let rs = sampled.run_stream(stream.into_iter());
        assert_eq!(
            rs.stats.committed.to_histogram(),
            rx.stats.committed.to_histogram(),
            "sampled architectural counts must stay exact"
        );
        let meta = rs.stats.sample.expect("sampled runs carry SampleMeta");
        assert!(meta.windows >= 50, "windows = {}", meta.windows);
        assert!(meta.coverage > 0.2 && meta.coverage < 0.6);
        let err = (rs.stats.ipc() - rx.stats.ipc()).abs() / rx.stats.ipc();
        assert!(err <= 0.05, "sampled IPC error {err:.4} exceeds 5%");
    }

    #[test]
    fn sampled_fully_detailed_is_bit_identical_to_approx() {
        let stream = mixed_stream(5_000);
        let cfg = ex5_big(Ex5Variant::Old);
        let mut approx = Engine::with_seed(cfg.clone(), 1.0e9, 1, 3);
        let rx = approx.run(stream.clone().into_iter());
        // interval >= stream and warmup+window >= stream: everything detailed.
        let params = SampleParams {
            interval: 1 << 40,
            window: 1 << 39,
            warmup: 1 << 39,
        };
        let mut sampled = SampledEngine::new(cfg, 1.0e9, 1, 3, params);
        for i in &stream {
            sampled.step(i);
        }
        let rs = sampled.finish();
        assert_eq!(rs.cycles, rx.cycles);
        assert_eq!(rs.stats.l1d.misses, rx.stats.l1d.misses);
        assert_eq!(rs.stats.sample.unwrap().coverage, 1.0);
    }

    #[test]
    fn sampled_is_deterministic() {
        let stream = mixed_stream(60_000);
        let cfg = cortex_a15_hw();
        let mk = || {
            let mut b = Backend::new(
                TierConfig::sampled(SampleParams::default()),
                &cfg,
                1.0e9,
                4,
                11,
            );
            b.run_stream(stream.clone().into_iter())
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.stats.l1d.misses, b.stats.l1d.misses);
        assert_eq!(a.stats.sample, b.stats.sample);
    }

    #[test]
    fn warm_state_advances_state_but_records_nothing() {
        let stream = mixed_stream(20_000);
        let mut warmed = Engine::with_seed(cortex_a7_hw(), 1.0e9, 1, 5);
        for i in &stream {
            warmed.warm_state(i);
        }
        // Warming charges no cycles and records no events at all.
        let r = warmed.finish();
        assert_eq!(r.cycles, 0.0);
        assert_eq!(r.stats.committed_instructions, 0);
        assert_eq!(r.stats.l1d.accesses, 0);
        assert_eq!(r.stats.l2.misses, 0);
        assert_eq!(r.stats.branch.lookups, 0);
        assert_eq!(r.stats.itlb.l1_accesses, 0);

        // But the state did advance: replaying the same stream in detail on
        // the warmed engine hits where a cold engine misses.
        let mut cold = Engine::with_seed(cortex_a7_hw(), 1.0e9, 1, 5);
        for i in &stream {
            cold.step(i);
        }
        let cold_r = cold.finish();
        for i in &stream {
            warmed.step(i);
        }
        let warm_r = warmed.finish();
        assert!(
            warm_r.stats.l2.misses < cold_r.stats.l2.misses,
            "warming must leave the caches hot: {} vs {}",
            warm_r.stats.l2.misses,
            cold_r.stats.l2.misses
        );
        assert!(warm_r.cycles < cold_r.cycles);
    }

    #[test]
    fn sample_params_env_defaults() {
        // Unset variables fall back to the documented defaults.
        std::env::remove_var(SAMPLE_INTERVAL_ENV);
        std::env::remove_var(SAMPLE_WINDOW_ENV);
        std::env::remove_var(SAMPLE_WARMUP_ENV);
        assert_eq!(SampleParams::from_env(), SampleParams::default());
    }

    #[test]
    fn detailed_len_clamps_to_interval() {
        let p = SampleParams {
            interval: 100,
            window: 80,
            warmup: 80,
        };
        assert_eq!(p.detailed_len(), 100);
    }
}
