//! Property-based tests for the power-modelling toolkit.

use gemstone_platform::dvfs::Cluster;
use gemstone_powmon::dataset::{PowerDataset, PowerObservation};
use gemstone_powmon::model::{EventExpr, PowerModel};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds a synthetic dataset whose power is exactly linear in two event
/// rates plus noise-free intercept, so model recovery can be asserted.
fn synthetic_dataset(
    c0: f64,
    c1: f64,
    c2: f64,
    rates: &[(f64, f64)],
    freq_hz: f64,
) -> PowerDataset {
    let observations = rates
        .iter()
        .enumerate()
        .map(|(i, &(r1, r2))| {
            let mut m = BTreeMap::new();
            m.insert(0x11u16, r1);
            m.insert(0x04u16, r2);
            PowerObservation {
                workload: format!("wl{i}"),
                freq_hz,
                voltage: 1.0,
                power_w: c0 + c1 * r1 + c2 * r2,
                time_s: 0.01,
                rates: m,
            }
        })
        .collect();
    PowerDataset::new(Cluster::BigA15, observations)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fit_recovers_exact_linear_truth(
        c0 in 0.1f64..2.0,
        c1 in 1e-10f64..1e-8,
        c2 in 1e-10f64..1e-8,
        seeds in prop::collection::vec((1e6f64..1e9, 1e6f64..1e9), 6..20),
    ) {
        // Ensure the two columns are not collinear.
        let distinct = seeds
            .iter()
            .map(|&(a, b)| (a / b * 1000.0) as i64)
            .collect::<std::collections::BTreeSet<_>>();
        prop_assume!(distinct.len() >= 4);
        let ds = synthetic_dataset(c0, c1, c2, &seeds, 1.0e9);
        let terms = vec![EventExpr::single(0x11), EventExpr::single(0x04)];
        let model = match PowerModel::fit(&ds, &terms) {
            Ok(m) => m,
            Err(_) => return Ok(()), // near-collinear draw
        };
        let q = model.quality(&ds).unwrap();
        prop_assert!(q.mape < 1e-6, "exact data must fit exactly, mape={}", q.mape);
        // Coefficients recovered.
        let coeffs = model.coefficients_at(1.0e9).unwrap();
        prop_assert!((coeffs[0] - c0).abs() / c0 < 1e-6);
        prop_assert!((coeffs[1] - c1).abs() / c1 < 1e-6);
        prop_assert!((coeffs[2] - c2).abs() / c2 < 1e-6);
    }

    #[test]
    fn breakdown_always_sums_to_total(
        rates in prop::collection::vec((1e6f64..1e9, 1e6f64..1e9), 8..16),
        probe_r1 in 1e6f64..1e9,
        probe_r2 in 1e6f64..1e9,
    ) {
        let ds = synthetic_dataset(0.5, 3e-10, 7e-10, &rates, 1.0e9);
        let terms = vec![EventExpr::single(0x11), EventExpr::single(0x04)];
        let model = match PowerModel::fit(&ds, &terms) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let mut probe = BTreeMap::new();
        probe.insert(0x11u16, probe_r1);
        probe.insert(0x04u16, probe_r2);
        let b = model.breakdown(1.0e9, &probe).unwrap();
        let sum: f64 = b.components.iter().map(|(_, w)| w).sum();
        prop_assert!((sum - b.total_w).abs() < 1e-9);
        prop_assert_eq!(b.components.len(), 3);
    }

    #[test]
    fn diff_terms_evaluate_as_difference(r1 in 0.0f64..1e9, r2 in 0.0f64..1e9) {
        let mut m = BTreeMap::new();
        m.insert(0x1Bu16, r1);
        m.insert(0x73u16, r2);
        let obs = PowerObservation {
            workload: "x".into(),
            freq_hz: 1.0e9,
            voltage: 1.0,
            power_w: 1.0,
            time_s: 1.0,
            rates: m,
        };
        let d = EventExpr::diff(0x1B, 0x73);
        prop_assert!((d.rate(&obs) - (r1 - r2)).abs() < 1e-9);
        let s = EventExpr::single(0x1B);
        prop_assert!((s.rate(&obs) - r1).abs() < 1e-9);
    }

    #[test]
    fn perturbed_models_still_predict_finite_power(
        rates in prop::collection::vec((1e6f64..1e9, 1e6f64..1e9), 8..14),
        variation in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let ds = synthetic_dataset(0.4, 2e-10, 5e-10, &rates, 1.0e9);
        let terms = vec![EventExpr::single(0x11), EventExpr::single(0x04)];
        let model = match PowerModel::fit(&ds, &terms) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let perturbed = gemstone_powmon::published::published_variant(&model, variation, seed);
        for o in &ds.observations {
            let p = perturbed.predict(o.freq_hz, &o.rates).unwrap();
            prop_assert!(p.is_finite());
        }
    }
}
