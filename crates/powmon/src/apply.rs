//! Applying a power model to hardware PMC data or gem5 statistics — the
//! paper's Fig. 2 software tool.
//!
//! "The advantage of this tool is that power models can be applied to gem5
//! results after the simulation, meaning that the selected power model or
//! the voltage for a selected frequency can be changed without re-running
//! the gem5 simulation."
//!
//! # Examples
//!
//! ```no_run
//! use gemstone_platform::{board::OdroidXu3, dvfs::Cluster, gem5sim::{Gem5Model, Gem5Sim}};
//! use gemstone_powmon::apply;
//! use gemstone_workloads::suites;
//! # fn model() -> gemstone_powmon::model::PowerModel { unimplemented!() }
//!
//! let spec = suites::by_name("mi-crc32").unwrap();
//! let run = Gem5Sim::run(&spec, Gem5Model::Ex5BigOld, 1.0e9);
//! let estimate = apply::apply_to_gem5(&model(), &run).unwrap();
//! println!("estimated power: {} W", estimate.power.total_w);
//! ```

use crate::model::{PowerBreakdown, PowerModel};
use gemstone_platform::board::HwRun;
use gemstone_platform::gem5sim::Gem5Run;
use gemstone_stats::Result;
use gemstone_uarch::pmu::EventCode;
use std::collections::BTreeMap;

/// A power/energy estimate for one run.
#[derive(Debug, Clone)]
pub struct PowerEstimate {
    /// Workload name.
    pub workload: String,
    /// Frequency (Hz).
    pub freq_hz: f64,
    /// Predicted power with component decomposition.
    pub power: PowerBreakdown,
    /// Execution time used for the energy estimate (s).
    pub time_s: f64,
    /// Energy estimate (J): power × time.
    pub energy_j: f64,
}

fn rates_from_counts(counts: &BTreeMap<EventCode, f64>, time_s: f64) -> BTreeMap<EventCode, f64> {
    counts.iter().map(|(&c, &v)| (c, v / time_s)).collect()
}

/// Applies the model to a hardware run (PMC counts → rates → power).
///
/// # Errors
///
/// Returns an error when the model has no coefficients for the run's
/// frequency.
pub fn apply_to_hw(model: &PowerModel, run: &HwRun) -> Result<PowerEstimate> {
    let rates = rates_from_counts(&run.pmc, run.time_s);
    let power = model.breakdown(run.freq_hz, &rates)?;
    Ok(PowerEstimate {
        workload: run.workload.clone(),
        freq_hz: run.freq_hz,
        time_s: run.time_s,
        energy_j: power.total_w * run.time_s,
        power,
    })
}

/// Applies the model to a gem5 run, using the model's *equivalent* gem5
/// events (box *l* of Fig. 1) and the **simulated** execution time — which
/// is how gem5 time errors propagate into energy errors (§VI).
///
/// # Errors
///
/// Returns an error when the model has no coefficients for the run's
/// frequency.
pub fn apply_to_gem5(model: &PowerModel, run: &Gem5Run) -> Result<PowerEstimate> {
    let rates = rates_from_counts(&run.pmu_equiv, run.time_s);
    let power = model.breakdown(run.freq_hz, &rates)?;
    Ok(PowerEstimate {
        workload: run.workload.clone(),
        freq_hz: run.freq_hz,
        time_s: run.time_s,
        energy_j: power.total_w * run.time_s,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EventExpr;
    use gemstone_platform::board::OdroidXu3;
    use gemstone_platform::dvfs::Cluster;
    use gemstone_platform::gem5sim::{Gem5Model, Gem5Sim};
    use gemstone_uarch::pmu;
    use gemstone_workloads::suites;

    fn model_and_board() -> (PowerModel, OdroidXu3) {
        let board = OdroidXu3::new();
        let names = [
            "mi-sha",
            "mi-crc32",
            "mi-fft",
            "whet-whetstone",
            "lm-bw-mem-rd",
            "mi-dijkstra",
            "rl-neonspeed",
            "dhry-dhrystone",
        ];
        let specs: Vec<_> = names
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.08))
            .collect();
        let ds = crate::dataset::collect(&board, Cluster::BigA15, &specs, &[1000.0e6]);
        let terms = vec![
            EventExpr::single(pmu::CPU_CYCLES),
            EventExpr::diff(pmu::INST_SPEC, pmu::DP_SPEC),
            EventExpr::single(pmu::L1D_CACHE),
            EventExpr::single(pmu::L2D_CACHE),
        ];
        (PowerModel::fit(&ds, &terms).unwrap(), board)
    }

    #[test]
    fn hw_and_gem5_application_agree_roughly() {
        let (model, board) = model_and_board();
        let spec = suites::by_name("mi-sha").unwrap().scaled(0.08);
        let hw = board.run(&spec, Cluster::BigA15, 1000.0e6);
        let g5 = Gem5Sim::run(&spec, Gem5Model::Ex5BigFixed, 1000.0e6);
        let e_hw = apply_to_hw(&model, &hw).unwrap();
        let e_g5 = apply_to_gem5(&model, &g5).unwrap();
        assert!(e_hw.power.total_w > 0.3);
        assert!(e_g5.power.total_w > 0.3);
        // Same model, similar event rates → the POWER estimates stay close
        // (§VI: power error is low) …
        let rel = (e_hw.power.total_w - e_g5.power.total_w).abs() / e_hw.power.total_w;
        assert!(rel < 0.4, "rel = {rel}");
        // … while energy inherits the execution-time error.
        assert!((e_hw.energy_j - e_hw.power.total_w * hw.time_s).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_with_time() {
        let (model, board) = model_and_board();
        let spec = suites::by_name("mi-crc32").unwrap().scaled(0.08);
        let hw = board.run(&spec, Cluster::BigA15, 1000.0e6);
        let est = apply_to_hw(&model, &hw).unwrap();
        assert!((est.energy_j / est.time_s - est.power.total_w).abs() < 1e-9);
        assert_eq!(est.workload, "mi-crc32");
    }

    #[test]
    fn wrong_frequency_errors() {
        let (model, _board) = model_and_board();
        let spec = suites::by_name("mi-crc32").unwrap().scaled(0.05);
        let g5 = Gem5Sim::run(&spec, Gem5Model::Ex5BigOld, 1.4e9);
        assert!(apply_to_gem5(&model, &g5).is_err());
    }
}
