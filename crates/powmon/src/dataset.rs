//! Power-characterisation datasets: one observation per
//! (workload, frequency) with measured power and PMC event rates.
//!
//! [`collect`] runs the characterisation sweep in parallel over a scoped
//! worker pool (the same work-queue pattern as the validation experiment
//! driver); observations always come back in the deterministic
//! workload-major, frequency-minor order regardless of scheduling, because
//! every board run is itself deterministic.
//!
//! # Examples
//!
//! ```
//! use gemstone_powmon::dataset::PowerObservation;
//! use std::collections::BTreeMap;
//!
//! let obs = PowerObservation {
//!     workload: "mi-sha".into(),
//!     freq_hz: 1.0e9,
//!     voltage: 0.99,
//!     power_w: 1.2,
//!     time_s: 0.01,
//!     rates: BTreeMap::new(),
//! };
//! assert_eq!(obs.rate(0x11), 0.0);
//! ```

use gemstone_platform::board::OdroidXu3;
use gemstone_platform::dvfs::{nearest_frequency, Cluster};
use gemstone_uarch::pmu::EventCode;
use gemstone_workloads::spec::WorkloadSpec;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide count of characterisation grid points simulated
/// (`powmon.collect.runs` in the metrics registry).
fn collect_runs_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| gemstone_obs::Registry::global().counter("powmon.collect.runs"))
}

/// One (workload, DVFS point) power observation.
#[derive(Debug, Clone)]
pub struct PowerObservation {
    /// Workload name.
    pub workload: String,
    /// Core frequency (Hz).
    pub freq_hz: f64,
    /// Supply voltage (V) at this operating point.
    pub voltage: f64,
    /// Measured average power (W).
    pub power_w: f64,
    /// Measured execution time of one workload run (s).
    pub time_s: f64,
    /// PMC event rates (events per second).
    pub rates: BTreeMap<EventCode, f64>,
}

impl PowerObservation {
    /// Rate of one event (0 when not captured).
    pub fn rate(&self, code: EventCode) -> f64 {
        self.rates.get(&code).copied().unwrap_or(0.0)
    }
}

/// A power-characterisation dataset for one cluster.
#[derive(Debug, Clone)]
pub struct PowerDataset {
    /// Cluster the data came from.
    pub cluster: Cluster,
    /// All observations.
    pub observations: Vec<PowerObservation>,
    /// Per-frequency index over `observations`, built once and consulted
    /// by [`PowerDataset::at_frequency`] / [`PowerDataset::frequencies`].
    freq_index: OnceLock<FreqIndex>,
}

#[derive(Debug, Clone, Default)]
struct FreqIndex {
    /// Distinct frequencies, ascending.
    freqs: Vec<f64>,
    /// Observation indices per exact frequency bit pattern.
    by_freq: HashMap<u64, Vec<usize>>,
}

impl PowerDataset {
    /// Builds a dataset and its frequency index.
    pub fn new(cluster: Cluster, observations: Vec<PowerObservation>) -> Self {
        let ds = PowerDataset {
            cluster,
            observations,
            freq_index: OnceLock::new(),
        };
        let _ = ds.index();
        ds
    }

    fn index(&self) -> &FreqIndex {
        self.freq_index.get_or_init(|| {
            let mut by_freq: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, o) in self.observations.iter().enumerate() {
                by_freq.entry(o.freq_hz.to_bits()).or_default().push(i);
            }
            let mut freqs: Vec<f64> = by_freq.keys().map(|&b| f64::from_bits(b)).collect();
            freqs.sort_by(f64::total_cmp);
            FreqIndex { freqs, by_freq }
        })
    }

    /// Distinct frequencies present, ascending.
    pub fn frequencies(&self) -> Vec<f64> {
        self.index().freqs.clone()
    }

    /// Observations at one frequency (indexed; matches within 1 Hz).
    pub fn at_frequency(&self, freq_hz: f64) -> Vec<&PowerObservation> {
        let idx = self.index();
        let Some(f) = nearest_frequency(&idx.freqs, freq_hz) else {
            return Vec::new();
        };
        idx.by_freq
            .get(&f.to_bits())
            .map(|is| is.iter().map(|&i| &self.observations[i]).collect())
            .unwrap_or_default()
    }

    /// Event codes that appear in every observation.
    pub fn common_events(&self) -> Vec<EventCode> {
        let Some(first) = self.observations.first() else {
            return Vec::new();
        };
        first
            .rates
            .keys()
            .copied()
            .filter(|c| self.observations.iter().all(|o| o.rates.contains_key(c)))
            .collect()
    }
}

/// Runs the power-characterisation experiment (boxes *c*/*d* of the paper's
/// Fig. 1): every workload at every frequency on one cluster, in parallel
/// over the shared [`gemstone_stats::threads::worker_threads`] pool size
/// (`GEMSTONE_THREADS` overrides it).
pub fn collect(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
) -> PowerDataset {
    collect_with_threads(
        board,
        cluster,
        workloads,
        freqs,
        gemstone_stats::threads::worker_threads(),
    )
}

/// [`collect`] with an explicit worker-thread count (`1` = serial). The
/// observation order — workload-major, frequency-minor — and every value
/// are identical for any thread count.
pub fn collect_with_threads(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
    threads: usize,
) -> PowerDataset {
    let _span = gemstone_obs::span::span("powmon.collect");
    let grid: Vec<(&WorkloadSpec, f64)> = workloads
        .iter()
        .flat_map(|spec| freqs.iter().map(move |&f| (spec, f)))
        .collect();
    collect_runs_counter().add(grid.len() as u64);
    let slots: Mutex<Vec<(usize, PowerObservation)>> = Mutex::new(Vec::with_capacity(grid.len()));
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(spec, f)) = grid.get(i) else { break };
                let obs = observe(board, cluster, spec, f);
                slots.lock().push((i, obs));
            });
        }
    });

    // Restore the deterministic grid order regardless of completion order.
    let mut indexed = slots.into_inner();
    indexed.sort_by_key(|&(i, _)| i);
    PowerDataset::new(cluster, indexed.into_iter().map(|(_, o)| o).collect())
}

fn observe(
    board: &OdroidXu3,
    cluster: Cluster,
    spec: &WorkloadSpec,
    freq_hz: f64,
) -> PowerObservation {
    let run = board.run(spec, cluster, freq_hz);
    // Rates are per second of the measurement window, which is only
    // partly busy.
    let rates = run
        .pmc
        .iter()
        .map(|(&code, &count)| (code, count / run.time_s * run.power_utilization))
        .collect();
    PowerObservation {
        workload: spec.name.clone(),
        freq_hz,
        voltage: cluster.voltage(freq_hz),
        power_w: run.power_w,
        time_s: run.time_s,
        rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_workloads::suites;

    fn tiny_dataset() -> PowerDataset {
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32", "whet-whetstone"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        collect(&board, Cluster::LittleA7, &specs, &[600.0e6, 1000.0e6])
    }

    #[test]
    fn collect_produces_full_grid() {
        let ds = tiny_dataset();
        assert_eq!(ds.observations.len(), 6);
        assert_eq!(ds.frequencies(), vec![600.0e6, 1000.0e6]);
        assert_eq!(ds.at_frequency(600.0e6).len(), 3);
        assert_eq!(ds.at_frequency(123.0).len(), 0);
    }

    #[test]
    fn observations_are_physical() {
        let ds = tiny_dataset();
        for o in &ds.observations {
            assert!(o.power_w > 0.0, "{}: {}", o.workload, o.power_w);
            assert!(o.time_s > 0.0);
            assert!(o.voltage > 0.5 && o.voltage < 1.5);
            assert!(o.rate(gemstone_uarch::pmu::CPU_CYCLES) > 0.0);
        }
    }

    #[test]
    fn parallel_equals_serial_in_order_and_values() {
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32", "whet-whetstone"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        let freqs = [600.0e6, 1000.0e6];
        let ser = collect_with_threads(&board, Cluster::LittleA7, &specs, &freqs, 1);
        let par = collect_with_threads(&board, Cluster::LittleA7, &specs, &freqs, 4);
        assert_eq!(ser.observations.len(), par.observations.len());
        for (a, b) in ser.observations.iter().zip(&par.observations) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.freq_hz, b.freq_hz);
            assert_eq!(a.power_w, b.power_w);
            assert_eq!(a.time_s, b.time_s);
            assert_eq!(a.rates, b.rates);
        }
    }

    #[test]
    fn common_events_nonempty() {
        let ds = tiny_dataset();
        let evs = ds.common_events();
        assert!(evs.len() >= 60);
        assert!(evs.contains(&gemstone_uarch::pmu::INST_RETIRED));
    }

    #[test]
    fn higher_frequency_higher_power() {
        let ds = tiny_dataset();
        for w in ["mi-sha", "mi-crc32"] {
            let lo = ds
                .observations
                .iter()
                .find(|o| o.workload == w && o.freq_hz == 600.0e6)
                .unwrap();
            let hi = ds
                .observations
                .iter()
                .find(|o| o.workload == w && o.freq_hz == 1000.0e6)
                .unwrap();
            assert!(hi.power_w > lo.power_w, "{w}");
        }
    }
}
