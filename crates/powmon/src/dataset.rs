//! Power-characterisation datasets: one observation per
//! (workload, frequency) with measured power and PMC event rates.
//!
//! [`collect`] runs the characterisation sweep in parallel over a scoped
//! worker pool (the same work-queue pattern as the validation experiment
//! driver); observations always come back in the deterministic
//! workload-major, frequency-minor order regardless of scheduling, because
//! every board run is itself deterministic.
//!
//! # Examples
//!
//! ```
//! use gemstone_powmon::dataset::PowerObservation;
//! use std::collections::BTreeMap;
//!
//! let obs = PowerObservation {
//!     workload: "mi-sha".into(),
//!     freq_hz: 1.0e9,
//!     voltage: 0.99,
//!     power_w: 1.2,
//!     time_s: 0.01,
//!     rates: BTreeMap::new(),
//! };
//! assert_eq!(obs.rate(0x11), 0.0);
//! ```

use gemstone_platform::board::{HwRun, OdroidXu3};
use gemstone_platform::dvfs::{nearest_frequency, Cluster};
use gemstone_platform::fault::{FaultInjector, QuarantinedWorkload, RetryPolicy};
use gemstone_uarch::backend::TierConfig;
use gemstone_uarch::pmu::EventCode;
use gemstone_workloads::spec::WorkloadSpec;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide count of characterisation grid points simulated
/// (`powmon.collect.runs` in the metrics registry).
fn collect_runs_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| gemstone_obs::Registry::global().counter("powmon.collect.runs"))
}

/// Process-wide count of workloads dropped from power sweeps after
/// exhausting their retry budget (`quarantine.workloads` — shared with the
/// validation sweep driver).
fn quarantine_counter() -> &'static gemstone_obs::Counter {
    static C: OnceLock<std::sync::Arc<gemstone_obs::Counter>> = OnceLock::new();
    C.get_or_init(|| gemstone_obs::Registry::global().counter("quarantine.workloads"))
}

/// One (workload, DVFS point) power observation.
#[derive(Debug, Clone)]
pub struct PowerObservation {
    /// Workload name.
    pub workload: String,
    /// Core frequency (Hz).
    pub freq_hz: f64,
    /// Supply voltage (V) at this operating point.
    pub voltage: f64,
    /// Measured average power (W).
    pub power_w: f64,
    /// Measured execution time of one workload run (s).
    pub time_s: f64,
    /// PMC event rates (events per second).
    pub rates: BTreeMap<EventCode, f64>,
}

impl PowerObservation {
    /// Rate of one event (0 when not captured).
    pub fn rate(&self, code: EventCode) -> f64 {
        self.rates.get(&code).copied().unwrap_or(0.0)
    }
}

/// A power-characterisation dataset for one cluster.
#[derive(Debug, Clone)]
pub struct PowerDataset {
    /// Cluster the data came from.
    pub cluster: Cluster,
    /// All observations.
    pub observations: Vec<PowerObservation>,
    /// Per-frequency index over `observations`, built once and consulted
    /// by [`PowerDataset::at_frequency`] / [`PowerDataset::frequencies`].
    freq_index: OnceLock<FreqIndex>,
}

#[derive(Debug, Clone, Default)]
struct FreqIndex {
    /// Distinct frequencies, ascending.
    freqs: Vec<f64>,
    /// Observation indices per exact frequency bit pattern.
    by_freq: HashMap<u64, Vec<usize>>,
}

impl PowerDataset {
    /// Builds a dataset and its frequency index.
    pub fn new(cluster: Cluster, observations: Vec<PowerObservation>) -> Self {
        let ds = PowerDataset {
            cluster,
            observations,
            freq_index: OnceLock::new(),
        };
        let _ = ds.index();
        ds
    }

    fn index(&self) -> &FreqIndex {
        self.freq_index.get_or_init(|| {
            let mut by_freq: HashMap<u64, Vec<usize>> = HashMap::new();
            for (i, o) in self.observations.iter().enumerate() {
                by_freq.entry(o.freq_hz.to_bits()).or_default().push(i);
            }
            let mut freqs: Vec<f64> = by_freq.keys().map(|&b| f64::from_bits(b)).collect();
            freqs.sort_by(f64::total_cmp);
            FreqIndex { freqs, by_freq }
        })
    }

    /// Distinct frequencies present, ascending.
    pub fn frequencies(&self) -> Vec<f64> {
        self.index().freqs.clone()
    }

    /// Observations at one frequency (indexed; matches within 1 Hz).
    pub fn at_frequency(&self, freq_hz: f64) -> Vec<&PowerObservation> {
        let idx = self.index();
        let Some(f) = nearest_frequency(&idx.freqs, freq_hz) else {
            return Vec::new();
        };
        idx.by_freq
            .get(&f.to_bits())
            .map(|is| is.iter().map(|&i| &self.observations[i]).collect())
            .unwrap_or_default()
    }

    /// Event codes that appear in every observation.
    pub fn common_events(&self) -> Vec<EventCode> {
        let Some(first) = self.observations.first() else {
            return Vec::new();
        };
        first
            .rates
            .keys()
            .copied()
            .filter(|c| self.observations.iter().all(|o| o.rates.contains_key(c)))
            .collect()
    }
}

/// Runs the power-characterisation experiment (boxes *c*/*d* of the paper's
/// Fig. 1): every workload at every frequency on one cluster, in parallel
/// over the shared [`gemstone_stats::threads::worker_threads`] pool size
/// (`GEMSTONE_THREADS` overrides it).
pub fn collect(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
) -> PowerDataset {
    collect_with_threads(
        board,
        cluster,
        workloads,
        freqs,
        gemstone_stats::threads::worker_threads(),
    )
}

/// [`collect`] with an explicit worker-thread count (`1` = serial). The
/// observation order — workload-major, frequency-minor — and every value
/// are identical for any thread count.
pub fn collect_with_threads(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
    threads: usize,
) -> PowerDataset {
    let _span = gemstone_obs::span::span("powmon.collect");
    collect_runs_counter().add((workloads.len() * freqs.len()) as u64);
    // One work item per workload: its whole frequency curve comes from a
    // single fused grid replay (decode once, one lane per DVFS point).
    let slots: Mutex<Vec<(usize, Vec<PowerObservation>)>> =
        Mutex::new(Vec::with_capacity(workloads.len()));
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = workloads.get(i) else { break };
                let runs = board.run_grid_tier(spec, cluster, freqs, TierConfig::default());
                let curve = freqs
                    .iter()
                    .zip(&runs)
                    .map(|(&f, run)| observation_from(cluster, spec, f, run))
                    .collect();
                slots.lock().push((i, curve));
            });
        }
    });

    // Restore the deterministic grid order regardless of completion order.
    let mut indexed = slots.into_inner();
    indexed.sort_by_key(|&(i, _)| i);
    PowerDataset::new(cluster, indexed.into_iter().flat_map(|(_, o)| o).collect())
}

/// [`collect`] with retries and workload quarantine: every board run is
/// wrapped in `retry` against `faults`, and a workload whose retry budget
/// is exhausted at any grid point is dropped *whole* (all its frequencies)
/// rather than aborting the sweep or leaving a partial frequency curve the
/// power-model fit would silently mis-weight. Surviving observations keep
/// the exact values and workload-major, frequency-minor order of a
/// fault-free [`collect`].
pub fn collect_resilient(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
    faults: &FaultInjector,
    retry: &RetryPolicy,
) -> (PowerDataset, Vec<QuarantinedWorkload>) {
    collect_resilient_with_threads(
        board,
        cluster,
        workloads,
        freqs,
        faults,
        retry,
        gemstone_stats::threads::worker_threads(),
    )
}

/// [`collect_resilient`] with an explicit worker-thread count.
#[allow(clippy::too_many_arguments)]
pub fn collect_resilient_with_threads(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
    faults: &FaultInjector,
    retry: &RetryPolicy,
    threads: usize,
) -> (PowerDataset, Vec<QuarantinedWorkload>) {
    let _span = gemstone_obs::span::span("powmon.collect_resilient");
    collect_runs_counter().add((workloads.len() * freqs.len()) as u64);
    type Slot = (usize, Result<Vec<PowerObservation>, QuarantinedWorkload>);
    let slots: Mutex<Vec<Slot>> = Mutex::new(Vec::with_capacity(workloads.len()));
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = workloads.get(i) else { break };
                // Vet every DVFS point (with per-point retries) before
                // committing to one fused replay for the whole curve.
                // Faults fire before any simulation or RNG work on the
                // per-point path too, so retry and quarantine behaviour —
                // including which error is reported — are identical, and a
                // quarantined workload never costs a simulation. A
                // workload is dropped *whole* rather than leaving a
                // partial frequency curve the power-model fit would
                // silently mis-weight.
                let vetted = freqs.iter().try_for_each(|&f| {
                    let key = format!("{}:{}:{:.0}", spec.name, cluster.name(), f);
                    retry
                        .run(&key, |attempt| {
                            board.check_faults(faults, spec, cluster, f, attempt)
                        })
                        .map_err(|e| QuarantinedWorkload {
                            workload: spec.name.clone(),
                            site: e.error.site.name().to_string(),
                            attempts: e.attempts,
                            reason: e.to_string(),
                        })
                });
                let outcome = vetted.map(|()| {
                    let runs = board.run_grid_tier(spec, cluster, freqs, TierConfig::default());
                    freqs
                        .iter()
                        .zip(&runs)
                        .map(|(&f, run)| observation_from(cluster, spec, f, run))
                        .collect()
                });
                slots.lock().push((i, outcome));
            });
        }
    });

    // Restore grid order; quarantined workloads contribute no observations.
    let mut indexed = slots.into_inner();
    indexed.sort_by_key(|&(i, _)| i);
    let mut quarantined: Vec<QuarantinedWorkload> = Vec::new();
    let mut observations = Vec::new();
    for (_, outcome) in indexed {
        match outcome {
            Ok(curve) => observations.extend(curve),
            Err(q) => quarantined.push(q),
        }
    }
    quarantine_counter().add(quarantined.len() as u64);
    quarantined.sort_by(|a, b| a.workload.cmp(&b.workload));
    (PowerDataset::new(cluster, observations), quarantined)
}

/// Turns one board run into a power observation. Rates are per second of
/// the measurement window, which is only partly busy.
fn observation_from(
    cluster: Cluster,
    spec: &WorkloadSpec,
    freq_hz: f64,
    run: &HwRun,
) -> PowerObservation {
    let rates = run
        .pmc
        .iter()
        .map(|(&code, &count)| (code, count / run.time_s * run.power_utilization))
        .collect();
    PowerObservation {
        workload: spec.name.clone(),
        freq_hz,
        voltage: cluster.voltage(freq_hz),
        power_w: run.power_w,
        time_s: run.time_s,
        rates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_workloads::suites;

    fn tiny_dataset() -> PowerDataset {
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32", "whet-whetstone"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        collect(&board, Cluster::LittleA7, &specs, &[600.0e6, 1000.0e6])
    }

    #[test]
    fn collect_produces_full_grid() {
        let ds = tiny_dataset();
        assert_eq!(ds.observations.len(), 6);
        assert_eq!(ds.frequencies(), vec![600.0e6, 1000.0e6]);
        assert_eq!(ds.at_frequency(600.0e6).len(), 3);
        assert_eq!(ds.at_frequency(123.0).len(), 0);
    }

    #[test]
    fn observations_are_physical() {
        let ds = tiny_dataset();
        for o in &ds.observations {
            assert!(o.power_w > 0.0, "{}: {}", o.workload, o.power_w);
            assert!(o.time_s > 0.0);
            assert!(o.voltage > 0.5 && o.voltage < 1.5);
            assert!(o.rate(gemstone_uarch::pmu::CPU_CYCLES) > 0.0);
        }
    }

    #[test]
    fn parallel_equals_serial_in_order_and_values() {
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32", "whet-whetstone"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        let freqs = [600.0e6, 1000.0e6];
        let ser = collect_with_threads(&board, Cluster::LittleA7, &specs, &freqs, 1);
        let par = collect_with_threads(&board, Cluster::LittleA7, &specs, &freqs, 4);
        assert_eq!(ser.observations.len(), par.observations.len());
        for (a, b) in ser.observations.iter().zip(&par.observations) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.freq_hz, b.freq_hz);
            assert_eq!(a.power_w, b.power_w);
            assert_eq!(a.time_s, b.time_s);
            assert_eq!(a.rates, b.rates);
        }
    }

    #[test]
    fn resilient_collect_without_faults_matches_collect() {
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        let freqs = [600.0e6, 1000.0e6];
        let clean = collect(&board, Cluster::LittleA7, &specs, &freqs);
        let (ds, quarantined) = collect_resilient(
            &board,
            Cluster::LittleA7,
            &specs,
            &freqs,
            &FaultInjector::disabled(),
            &RetryPolicy::default(),
        );
        assert!(quarantined.is_empty());
        assert_eq!(ds.observations.len(), clean.observations.len());
        for (a, b) in clean.observations.iter().zip(&ds.observations) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.freq_hz, b.freq_hz);
            assert_eq!(a.power_w, b.power_w);
            assert_eq!(a.rates, b.rates);
        }
    }

    #[test]
    fn resilient_collect_retries_transient_faults_to_identical_values() {
        use gemstone_platform::fault::FaultPlan;
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        let freqs = [600.0e6, 1000.0e6];
        let clean = collect(&board, Cluster::LittleA7, &specs, &freqs);
        let inj = FaultInjector::new(FaultPlan {
            seed: 17,
            transient_rate: 0.7,
            permanent_rate: 0.0,
            max_transient_fails: 2,
        });
        let retry = RetryPolicy {
            base_delay: std::time::Duration::from_micros(10),
            max_delay: std::time::Duration::from_micros(100),
            ..RetryPolicy::default()
        };
        let (ds, quarantined) =
            collect_resilient(&board, Cluster::LittleA7, &specs, &freqs, &inj, &retry);
        assert!(quarantined.is_empty(), "{quarantined:?}");
        for (a, b) in clean.observations.iter().zip(&ds.observations) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.power_w, b.power_w);
            assert_eq!(a.rates, b.rates);
        }
    }

    #[test]
    fn resilient_collect_quarantines_whole_workloads() {
        use gemstone_platform::fault::{FaultPlan, FaultSite};
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32", "whet-whetstone"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        let freqs = [600.0e6, 1000.0e6];
        let inj = FaultInjector::new(FaultPlan {
            seed: 4,
            transient_rate: 0.0,
            permanent_rate: 0.4,
            max_transient_fails: 1,
        });
        // The injector is deterministic, so the expected quarantine set can
        // be computed directly: a workload is dropped iff any of its grid
        // keys faults permanently (attempt high enough to clear transients).
        let sites = [
            FaultSite::BoardRun,
            FaultSite::SensorRead,
            FaultSite::PmuCapture,
        ];
        let expect_dropped: Vec<&str> = specs
            .iter()
            .filter(|s| {
                freqs.iter().any(|&f| {
                    let key = format!("{}:{}:{:.0}", s.name, Cluster::LittleA7.name(), f);
                    sites
                        .iter()
                        .any(|&site| inj.check(site, &key, 1000).is_err())
                })
            })
            .map(|s| s.name.as_str())
            .collect();
        assert!(
            !expect_dropped.is_empty() && expect_dropped.len() < specs.len(),
            "seed must split the set, dropped = {expect_dropped:?}"
        );
        let retry = RetryPolicy {
            base_delay: std::time::Duration::from_micros(10),
            ..RetryPolicy::default()
        };
        let (ds, quarantined) =
            collect_resilient(&board, Cluster::LittleA7, &specs, &freqs, &inj, &retry);
        let mut dropped: Vec<&str> = quarantined.iter().map(|q| q.workload.as_str()).collect();
        let mut expected = expect_dropped.clone();
        dropped.sort_unstable();
        expected.sort_unstable();
        assert_eq!(dropped, expected);
        // Survivors keep full frequency curves with fault-free values.
        let clean = collect(&board, Cluster::LittleA7, &specs, &freqs);
        for o in &ds.observations {
            assert!(!expect_dropped.contains(&o.workload.as_str()));
            let reference = clean
                .observations
                .iter()
                .find(|c| c.workload == o.workload && c.freq_hz == o.freq_hz)
                .unwrap();
            assert_eq!(o.power_w, reference.power_w);
            assert_eq!(o.rates, reference.rates);
        }
        for s in &specs {
            if !expect_dropped.contains(&s.name.as_str()) {
                let curve = ds
                    .observations
                    .iter()
                    .filter(|o| o.workload == s.name)
                    .count();
                assert_eq!(curve, freqs.len(), "{}", s.name);
            }
        }
    }

    #[test]
    fn common_events_nonempty() {
        let ds = tiny_dataset();
        let evs = ds.common_events();
        assert!(evs.len() >= 60);
        assert!(evs.contains(&gemstone_uarch::pmu::INST_RETIRED));
    }

    #[test]
    fn higher_frequency_higher_power() {
        let ds = tiny_dataset();
        for w in ["mi-sha", "mi-crc32"] {
            let lo = ds
                .observations
                .iter()
                .find(|o| o.workload == w && o.freq_hz == 600.0e6)
                .unwrap();
            let hi = ds
                .observations
                .iter()
                .find(|o| o.workload == w && o.freq_hz == 1000.0e6)
                .unwrap();
            assert!(hi.power_w > lo.power_w, "{w}");
        }
    }
}
