//! Power-characterisation datasets: one observation per
//! (workload, frequency) with measured power and PMC event rates.
//!
//! # Examples
//!
//! ```
//! use gemstone_powmon::dataset::PowerObservation;
//! use std::collections::BTreeMap;
//!
//! let obs = PowerObservation {
//!     workload: "mi-sha".into(),
//!     freq_hz: 1.0e9,
//!     voltage: 0.99,
//!     power_w: 1.2,
//!     time_s: 0.01,
//!     rates: BTreeMap::new(),
//! };
//! assert_eq!(obs.rate(0x11), 0.0);
//! ```

use gemstone_platform::board::OdroidXu3;
use gemstone_platform::dvfs::Cluster;
use gemstone_uarch::pmu::EventCode;
use gemstone_workloads::spec::WorkloadSpec;
use std::collections::BTreeMap;

/// One (workload, DVFS point) power observation.
#[derive(Debug, Clone)]
pub struct PowerObservation {
    /// Workload name.
    pub workload: String,
    /// Core frequency (Hz).
    pub freq_hz: f64,
    /// Supply voltage (V) at this operating point.
    pub voltage: f64,
    /// Measured average power (W).
    pub power_w: f64,
    /// Measured execution time of one workload run (s).
    pub time_s: f64,
    /// PMC event rates (events per second).
    pub rates: BTreeMap<EventCode, f64>,
}

impl PowerObservation {
    /// Rate of one event (0 when not captured).
    pub fn rate(&self, code: EventCode) -> f64 {
        self.rates.get(&code).copied().unwrap_or(0.0)
    }
}

/// A power-characterisation dataset for one cluster.
#[derive(Debug, Clone)]
pub struct PowerDataset {
    /// Cluster the data came from.
    pub cluster: Cluster,
    /// All observations.
    pub observations: Vec<PowerObservation>,
}

impl PowerDataset {
    /// Distinct frequencies present, ascending.
    pub fn frequencies(&self) -> Vec<f64> {
        let mut fs: Vec<f64> = self.observations.iter().map(|o| o.freq_hz).collect();
        fs.sort_by(|a, b| a.partial_cmp(b).expect("finite frequencies"));
        fs.dedup();
        fs
    }

    /// Observations at one frequency.
    pub fn at_frequency(&self, freq_hz: f64) -> Vec<&PowerObservation> {
        self.observations
            .iter()
            .filter(|o| (o.freq_hz - freq_hz).abs() < 1.0)
            .collect()
    }

    /// Event codes that appear in every observation.
    pub fn common_events(&self) -> Vec<EventCode> {
        let Some(first) = self.observations.first() else {
            return Vec::new();
        };
        first
            .rates
            .keys()
            .copied()
            .filter(|c| self.observations.iter().all(|o| o.rates.contains_key(c)))
            .collect()
    }
}

/// Runs the power-characterisation experiment (boxes *c*/*d* of the paper's
/// Fig. 1): every workload at every frequency on one cluster.
pub fn collect(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    freqs: &[f64],
) -> PowerDataset {
    let mut observations = Vec::with_capacity(workloads.len() * freqs.len());
    for spec in workloads {
        for &f in freqs {
            let run = board.run(spec, cluster, f);
            // Rates are per second of the measurement window, which is only
            // partly busy.
            let rates = run
                .pmc
                .iter()
                .map(|(&code, &count)| (code, count / run.time_s * run.power_utilization))
                .collect();
            observations.push(PowerObservation {
                workload: spec.name.clone(),
                freq_hz: f,
                voltage: cluster.voltage(f),
                power_w: run.power_w,
                time_s: run.time_s,
                rates,
            });
        }
    }
    PowerDataset {
        cluster,
        observations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_workloads::suites;

    fn tiny_dataset() -> PowerDataset {
        let board = OdroidXu3::new();
        let specs: Vec<WorkloadSpec> = ["mi-sha", "mi-crc32", "whet-whetstone"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.05))
            .collect();
        collect(&board, Cluster::LittleA7, &specs, &[600.0e6, 1000.0e6])
    }

    #[test]
    fn collect_produces_full_grid() {
        let ds = tiny_dataset();
        assert_eq!(ds.observations.len(), 6);
        assert_eq!(ds.frequencies(), vec![600.0e6, 1000.0e6]);
        assert_eq!(ds.at_frequency(600.0e6).len(), 3);
        assert_eq!(ds.at_frequency(123.0).len(), 0);
    }

    #[test]
    fn observations_are_physical() {
        let ds = tiny_dataset();
        for o in &ds.observations {
            assert!(o.power_w > 0.0, "{}: {}", o.workload, o.power_w);
            assert!(o.time_s > 0.0);
            assert!(o.voltage > 0.5 && o.voltage < 1.5);
            assert!(o.rate(gemstone_uarch::pmu::CPU_CYCLES) > 0.0);
        }
    }

    #[test]
    fn common_events_nonempty() {
        let ds = tiny_dataset();
        let evs = ds.common_events();
        assert!(evs.len() >= 60);
        assert!(evs.contains(&gemstone_uarch::pmu::INST_RETIRED));
    }

    #[test]
    fn higher_frequency_higher_power() {
        let ds = tiny_dataset();
        for w in ["mi-sha", "mi-crc32"] {
            let lo = ds
                .observations
                .iter()
                .find(|o| o.workload == w && o.freq_hz == 600.0e6)
                .unwrap();
            let hi = ds
                .observations
                .iter()
                .find(|o| o.workload == w && o.freq_hz == 1000.0e6)
                .unwrap();
            assert!(hi.power_w > lo.power_w, "{w}");
        }
    }
}
