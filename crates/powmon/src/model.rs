//! Power-model formulation: per-DVFS-point linear models over PMC event
//! rates, with the quality statistics reported in §V of the paper
//! (MAPE, MPE, SER, adjusted R², VIF, coefficient *p*-values).
//!
//! # Examples
//!
//! ```
//! use gemstone_powmon::model::EventExpr;
//!
//! // The paper's multicollinearity-reducing difference term.
//! let term = EventExpr::diff(0x1B, 0x73);
//! assert_eq!(term.name(), "0x1B-0x73");
//! ```

use crate::dataset::{PowerDataset, PowerObservation};
use gemstone_stats::metrics;
use gemstone_stats::regress::{vif, Ols};
use gemstone_stats::{Result, StatsError};
use gemstone_uarch::pmu::{event_name, EventCode};
use std::collections::BTreeMap;

/// A model input: one PMC event rate, optionally minus another event's rate
/// ("Event 0x1B has 0x73 subtracted from it to reduce multicollinearity",
/// §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventExpr {
    /// Base event.
    pub event: EventCode,
    /// Optional subtracted event.
    pub minus: Option<EventCode>,
}

impl EventExpr {
    /// A plain single-event term.
    pub fn single(event: EventCode) -> Self {
        EventExpr { event, minus: None }
    }

    /// A difference term `event − minus`.
    pub fn diff(event: EventCode, minus: EventCode) -> Self {
        EventExpr {
            event,
            minus: Some(minus),
        }
    }

    /// Display name, e.g. `"0x11"` or `"0x1B-0x73"`.
    pub fn name(&self) -> String {
        match self.minus {
            Some(m) => format!("{:#04X}-{:#04X}", self.event, m),
            None => format!("{:#04X}", self.event),
        }
    }

    /// Human-readable name using PMU mnemonics where known.
    pub fn mnemonic(&self) -> String {
        let base = event_name(self.event)
            .map_or_else(|| format!("{:#04x}", self.event), |n| n.to_string());
        match self.minus {
            Some(m) => {
                let sub = event_name(m).map_or_else(|| format!("{m:#04x}"), |n| n.to_string());
                format!("{base}-{sub}")
            }
            None => base,
        }
    }

    /// Evaluates the term's rate for an observation.
    pub fn rate(&self, obs: &PowerObservation) -> f64 {
        let base = obs.rate(self.event);
        match self.minus {
            Some(m) => base - obs.rate(m),
            None => base,
        }
    }
}

/// Pooled quality statistics of a fitted power model (§V reports exactly
/// these).
#[derive(Debug, Clone)]
pub struct ModelQuality {
    /// Mean absolute percentage error over all observations.
    pub mape: f64,
    /// Mean (signed) percentage error.
    pub mpe: f64,
    /// Worst absolute percentage error over all observations.
    pub max_ape: f64,
    /// Standard error of regression (W), pooled over frequencies.
    pub ser: f64,
    /// Adjusted R², pooled.
    pub adj_r_squared: f64,
    /// Mean variance inflation factor across model inputs.
    pub mean_vif: f64,
    /// Largest coefficient p-value over all per-frequency fits.
    pub max_p_value: f64,
    /// Per-term worst p-value across frequencies (intercept excluded),
    /// aligned with the model's term order.
    pub term_p_values: Vec<f64>,
    /// Observations used.
    pub n: usize,
}

/// A per-DVFS-point linear power model `P(f) = β₀(f) + Σ βᵢ(f)·rateᵢ`.
#[derive(Debug, Clone)]
pub struct PowerModel {
    /// Cluster name the model was built for.
    pub cluster: String,
    /// Model input terms (shared across frequencies).
    pub terms: Vec<EventExpr>,
    /// Per-frequency coefficient vectors (intercept first), keyed by
    /// frequency in kHz to make the key integral.
    coefficients: BTreeMap<u64, Vec<f64>>,
}

fn freq_key(freq_hz: f64) -> u64 {
    (freq_hz / 1000.0).round() as u64
}

impl PowerModel {
    /// Fits the model to a characterisation dataset.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NotEnoughData`] — too few observations at any
    ///   frequency for the number of terms.
    /// * [`StatsError::Singular`] — collinear terms.
    /// * [`StatsError::InvalidArgument`] — no terms supplied.
    pub fn fit(ds: &PowerDataset, terms: &[EventExpr]) -> Result<PowerModel> {
        if terms.is_empty() {
            return Err(StatsError::InvalidArgument(
                "power model needs at least one term",
            ));
        }
        let mut coefficients = BTreeMap::new();
        for f in ds.frequencies() {
            let obs = ds.at_frequency(f);
            let x: Vec<Vec<f64>> = obs
                .iter()
                .map(|o| terms.iter().map(|t| t.rate(o)).collect())
                .collect();
            let y: Vec<f64> = obs.iter().map(|o| o.power_w).collect();
            let names: Vec<String> = terms.iter().map(|t| t.name()).collect();
            let fit = Ols::fit(&x, &y, &names)?;
            coefficients.insert(freq_key(f), fit.coefficients);
        }
        Ok(PowerModel {
            cluster: ds.cluster.name().to_string(),
            terms: terms.to_vec(),
            coefficients,
        })
    }

    /// Mutable access to the per-frequency coefficient vectors (intercept
    /// first), for deriving perturbed variants.
    pub(crate) fn coefficients_mut(&mut self) -> impl Iterator<Item = &mut Vec<f64>> {
        self.coefficients.values_mut()
    }

    /// Frequencies the model has coefficients for (Hz).
    pub fn frequencies(&self) -> Vec<f64> {
        self.coefficients
            .keys()
            .map(|&k| k as f64 * 1000.0)
            .collect()
    }

    /// Coefficient vector (intercept first) at a frequency.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] when the model has no
    /// coefficients for that frequency.
    pub fn coefficients_at(&self, freq_hz: f64) -> Result<&[f64]> {
        self.coefficients
            .get(&freq_key(freq_hz))
            .map(|v| v.as_slice())
            .ok_or(StatsError::InvalidArgument(
                "no coefficients for this frequency",
            ))
    }

    /// Predicts power (W) from event rates at a frequency.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PowerModel::coefficients_at`].
    pub fn predict(&self, freq_hz: f64, rates: &BTreeMap<EventCode, f64>) -> Result<f64> {
        Ok(self.breakdown(freq_hz, rates)?.total_w)
    }

    /// Predicts power with the per-component decomposition used by the
    /// paper's Fig. 7 stacked bars.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PowerModel::coefficients_at`].
    pub fn breakdown(
        &self,
        freq_hz: f64,
        rates: &BTreeMap<EventCode, f64>,
    ) -> Result<PowerBreakdown> {
        let coeffs = self.coefficients_at(freq_hz)?;
        let probe = PowerObservation {
            workload: String::new(),
            freq_hz,
            voltage: 0.0,
            power_w: 0.0,
            time_s: 1.0,
            rates: rates.clone(),
        };
        let mut components = vec![("(intercept)".to_string(), coeffs[0])];
        let mut total = coeffs[0];
        for (term, &c) in self.terms.iter().zip(&coeffs[1..]) {
            let w = c * term.rate(&probe);
            components.push((term.name(), w));
            total += w;
        }
        Ok(PowerBreakdown {
            total_w: total,
            components,
        })
    }

    /// Computes pooled quality statistics against a dataset.
    ///
    /// # Errors
    ///
    /// Propagates metric/regression errors (e.g. empty dataset).
    pub fn quality(&self, ds: &PowerDataset) -> Result<ModelQuality> {
        let mut measured = Vec::new();
        let mut predicted = Vec::new();
        let mut sq_res = 0.0;
        let mut max_p: f64 = 0.0;
        let mut term_p = vec![0.0_f64; self.terms.len()];
        let mut adj_r2_acc = 0.0;
        let mut nf = 0usize;
        for f in ds.frequencies() {
            let obs = ds.at_frequency(f);
            let x: Vec<Vec<f64>> = obs
                .iter()
                .map(|o| self.terms.iter().map(|t| t.rate(o)).collect())
                .collect();
            let y: Vec<f64> = obs.iter().map(|o| o.power_w).collect();
            let names: Vec<String> = self.terms.iter().map(|t| t.name()).collect();
            let fit = Ols::fit(&x, &y, &names)?;
            adj_r2_acc += fit.adj_r_squared;
            nf += 1;
            if let Some(p) = fit.max_predictor_p_value() {
                max_p = max_p.max(p);
            }
            for (tp, term) in term_p.iter_mut().zip(&fit.terms[1..]) {
                if !term.p_value.is_nan() {
                    *tp = tp.max(term.p_value);
                }
            }
            for o in &obs {
                let p = self.predict(f, &o.rates)?;
                measured.push(o.power_w);
                predicted.push(p);
                sq_res += (o.power_w - p) * (o.power_w - p);
            }
        }
        if measured.is_empty() {
            return Err(StatsError::NotEnoughData {
                needed: 1,
                available: 0,
            });
        }
        let n = measured.len();
        let k_total = (self.terms.len() + 1) * nf;
        let dof = (n as isize - k_total as isize).max(1) as f64;
        // Pooled R² over every observation (the paper's quality metric
        // spans the full DVFS power range).
        let ybar = measured.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = measured.iter().map(|m| (m - ybar) * (m - ybar)).sum();
        let pooled_adj_r2 = if ss_tot > 0.0 && n > k_total {
            1.0 - (sq_res / dof) / (ss_tot / (n - 1) as f64)
        } else {
            adj_r2_acc / nf.max(1) as f64
        };
        // VIF over the pooled design.
        let pooled: Vec<Vec<f64>> = ds
            .observations
            .iter()
            .map(|o| self.terms.iter().map(|t| t.rate(o)).collect())
            .collect();
        let vifs = vif(&pooled)?;
        let mean_vif = vifs.iter().map(|v| v.min(1000.0)).sum::<f64>() / vifs.len() as f64;
        let max_ape = measured
            .iter()
            .zip(&predicted)
            .map(|(m, p)| metrics::percentage_error(*m, *p).abs())
            .fold(0.0_f64, f64::max);
        Ok(ModelQuality {
            mape: metrics::mape(&measured, &predicted)?,
            mpe: metrics::mpe(&measured, &predicted)?,
            max_ape,
            ser: (sq_res / dof).sqrt(),
            adj_r_squared: pooled_adj_r2,
            mean_vif,
            max_p_value: max_p,
            term_p_values: term_p,
            n,
        })
    }

    /// Emits the model as gem5-insertable power equations, one per
    /// frequency.
    pub fn equations(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} power model ({} terms)\n",
            self.cluster,
            self.terms.len()
        ));
        for (&k, coeffs) in &self.coefficients {
            let mhz = k / 1000;
            let mut eq = format!("power_{mhz}mhz = {:.6}", coeffs[0]);
            for (term, c) in self.terms.iter().zip(&coeffs[1..]) {
                eq.push_str(&format!(" + {c:.6e} * rate({})", term.mnemonic()));
            }
            out.push_str(&eq);
            out.push('\n');
        }
        out
    }
}

/// Per-component power decomposition.
#[derive(Debug, Clone)]
pub struct PowerBreakdown {
    /// Total predicted power (W).
    pub total_w: f64,
    /// `(component name, watts)` pairs, intercept first.
    pub components: Vec<(String, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_platform::board::OdroidXu3;
    use gemstone_platform::dvfs::Cluster;
    use gemstone_uarch::pmu;
    use gemstone_workloads::suites;

    fn dataset(cluster: Cluster) -> PowerDataset {
        let board = OdroidXu3::new();
        let names = [
            "mi-sha",
            "mi-crc32",
            "mi-fft",
            "whet-whetstone",
            "dhry-dhrystone",
            "lm-bw-mem-rd",
            "rl-neonspeed",
            "mi-dijkstra",
        ];
        let specs: Vec<_> = names
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.08))
            .collect();
        crate::dataset::collect(&board, cluster, &specs, &[600.0e6, 1000.0e6])
    }

    fn default_terms() -> Vec<EventExpr> {
        vec![
            EventExpr::single(pmu::CPU_CYCLES),
            EventExpr::diff(pmu::INST_SPEC, pmu::DP_SPEC),
            EventExpr::single(pmu::L1D_CACHE),
            EventExpr::single(pmu::L2D_CACHE),
        ]
    }

    #[test]
    fn event_expr_names() {
        assert_eq!(EventExpr::single(0x11).name(), "0x11");
        assert_eq!(EventExpr::diff(0x1B, 0x73).name(), "0x1B-0x73");
        assert_eq!(EventExpr::single(0x11).mnemonic(), "CPU_CYCLES");
        assert_eq!(EventExpr::diff(0x1B, 0x73).mnemonic(), "INST_SPEC-DP_SPEC");
    }

    #[test]
    fn fit_and_predict_reasonably() {
        let ds = dataset(Cluster::BigA15);
        let model = PowerModel::fit(&ds, &default_terms()).unwrap();
        let q = model.quality(&ds).unwrap();
        assert!(q.mape < 15.0, "mape = {}", q.mape);
        assert!(q.adj_r_squared > 0.8, "adj r2 = {}", q.adj_r_squared);
        assert!(q.ser > 0.0);
        assert_eq!(q.n, ds.observations.len());
    }

    #[test]
    fn breakdown_sums_to_prediction() {
        let ds = dataset(Cluster::LittleA7);
        let model = PowerModel::fit(&ds, &default_terms()).unwrap();
        let o = &ds.observations[0];
        let b = model.breakdown(o.freq_hz, &o.rates).unwrap();
        let sum: f64 = b.components.iter().map(|(_, w)| w).sum();
        assert!((sum - b.total_w).abs() < 1e-9);
        assert_eq!(b.components[0].0, "(intercept)");
        assert_eq!(b.components.len(), default_terms().len() + 1);
    }

    #[test]
    fn unknown_frequency_is_an_error() {
        let ds = dataset(Cluster::LittleA7);
        let model = PowerModel::fit(&ds, &default_terms()).unwrap();
        assert!(model.predict(1.4e9, &BTreeMap::new()).is_err());
        assert!(model.coefficients_at(600.0e6).is_ok());
        assert_eq!(model.frequencies(), vec![600.0e6, 1000.0e6]);
    }

    #[test]
    fn empty_terms_rejected() {
        let ds = dataset(Cluster::LittleA7);
        assert!(PowerModel::fit(&ds, &[]).is_err());
    }

    #[test]
    fn equations_contain_all_frequencies() {
        let ds = dataset(Cluster::BigA15);
        let model = PowerModel::fit(&ds, &default_terms()).unwrap();
        let eq = model.equations();
        assert!(eq.contains("power_600mhz"));
        assert!(eq.contains("power_1000mhz"));
        assert!(eq.contains("CPU_CYCLES"));
        assert!(eq.contains("INST_SPEC-DP_SPEC"));
    }
}
