//! PMC event selection for power models.
//!
//! Greedy forward selection maximising the pooled adjusted R², with the
//! Powmon stability safeguards: a candidate is rejected if it is too
//! strongly correlated with an already-selected term (multicollinearity
//! control), and the pool can be *restricted* — GemStone feeds "PMC
//! selection restraints" back into the selection so that only events with
//! accurate, available gem5 equivalents are chosen (§V: events like
//! unaligned accesses (0x0F) are unavailable in gem5 and L1D writebacks
//! (0x15) have >1000 % error, so they are excluded from the
//! gem5-compatible pool).
//!
//! # Examples
//!
//! ```no_run
//! use gemstone_powmon::selection::{gem5_compatible_pool, SelectionOptions};
//!
//! let opts = SelectionOptions {
//!     restricted_pool: Some(gem5_compatible_pool()),
//!     ..SelectionOptions::default()
//! };
//! assert!(!gem5_compatible_pool().contains(&0x15)); // L1D_CACHE_WB excluded
//! # let _ = opts;
//! ```

use crate::dataset::PowerDataset;
use crate::model::{EventExpr, PowerModel};
use gemstone_stats::corr::pearson;
use gemstone_stats::{Result, StatsError};
use gemstone_uarch::pmu::{self, EventCode};
use std::collections::BTreeSet;

/// Options controlling event selection.
#[derive(Debug, Clone)]
pub struct SelectionOptions {
    /// When set, only these events may be selected.
    pub restricted_pool: Option<BTreeSet<EventCode>>,
    /// Events that may never be selected.
    pub excluded: BTreeSet<EventCode>,
    /// Maximum number of selected terms.
    pub max_terms: usize,
    /// Reject a candidate whose |correlation| with a selected term exceeds
    /// this (unless it is offered as a difference term).
    pub max_intercorrelation: f64,
    /// Reject a trial whose mean variance inflation factor exceeds this
    /// (the paper reports a mean VIF of 6, "a low level of
    /// inter-correlation, as required").
    pub max_mean_vif: f64,
    /// Reject a trial whose worst per-frequency coefficient *p*-value
    /// exceeds this.
    pub max_p_value: f64,
    /// Minimum adjusted-R² improvement to continue.
    pub min_gain: f64,
    /// Always include the cycle counter first (the dominant dynamic-power
    /// proxy; the paper's models all carry the 0x11 rate).
    pub seed_with_cycles: bool,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions {
            restricted_pool: None,
            excluded: BTreeSet::new(),
            max_terms: 7,
            max_intercorrelation: 0.85,
            max_mean_vif: 10.0,
            max_p_value: 0.3,
            min_gain: 1e-4,
            seed_with_cycles: true,
        }
    }
}

/// The gem5-compatible event pool (§V): excludes events with no gem5
/// equivalent (unaligned-access family), the wildly mis-modelled L1D
/// writeback event, and the misclassified scalar-FP event.
pub fn gem5_compatible_pool() -> BTreeSet<EventCode> {
    let excluded: BTreeSet<EventCode> = [
        0x0F, // UNALIGNED_LDST_RETIRED — unavailable in gem5
        0x68, 0x69, 0x6A, // UNALIGNED_*_SPEC — unavailable in gem5
        0x15, // L1D_CACHE_WB — >1000 % error in the model
        0x46, 0x47, // writeback victim/clean — same accounting distortion
        0x75, // VFP_SPEC — misclassified as SIMD in gem5
    ]
    .into();
    pmu::events()
        .iter()
        .copied()
        .filter(|e| !excluded.contains(e))
        .collect()
}

/// The outcome of event selection.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Selected terms in order of importance.
    pub terms: Vec<EventExpr>,
    /// Adjusted-R² trajectory after each accepted term.
    pub adj_r2_path: Vec<f64>,
}

/// Runs greedy forward selection over the dataset.
///
/// # Errors
///
/// * [`StatsError::NotEnoughData`] — empty dataset.
/// * Propagates fit errors when no candidate can be fitted at all.
pub fn select_events(ds: &PowerDataset, opts: &SelectionOptions) -> Result<Selection> {
    if ds.observations.is_empty() {
        return Err(StatsError::NotEnoughData {
            needed: 8,
            available: 0,
        });
    }
    // Candidate events: in pool, not excluded, with variance.
    let candidates: Vec<EventCode> = ds
        .common_events()
        .into_iter()
        .filter(|e| {
            opts.restricted_pool.as_ref().is_none_or(|p| p.contains(e))
                && !opts.excluded.contains(e)
        })
        .filter(|&e| {
            let col: Vec<f64> = ds.observations.iter().map(|o| o.rate(e)).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            col.iter()
                .any(|v| (v - mean).abs() > 1e-9 * mean.abs().max(1.0))
        })
        .collect();
    if candidates.is_empty() {
        return Err(StatsError::InvalidArgument(
            "no candidate events with variance in the pool",
        ));
    }

    let col =
        |expr: &EventExpr| -> Vec<f64> { ds.observations.iter().map(|o| expr.rate(o)).collect() };

    let mut selected: Vec<EventExpr> = Vec::new();
    if opts.seed_with_cycles && candidates.contains(&pmu::CPU_CYCLES) {
        selected.push(EventExpr::single(pmu::CPU_CYCLES));
    }
    let mut path = Vec::new();
    let mut current = match PowerModel::fit(ds, &selected) {
        Ok(m) => m.quality(ds)?.adj_r_squared,
        Err(_) => 0.0,
    };
    if !selected.is_empty() {
        path.push(current);
    }

    loop {
        if selected.len() >= opts.max_terms {
            break;
        }
        // Columns of the selected terms, materialised once per step — they
        // only change when a term is accepted, so rebuilding them for every
        // (candidate, form) pair in the guard below would be pure churn.
        let sel_cols: Vec<Vec<f64>> = selected.iter().map(&col).collect();
        let mut best: Option<(EventExpr, f64)> = None;
        'cand: for &e in &candidates {
            if selected.iter().any(|t| t.event == e && t.minus.is_none()) {
                continue;
            }
            // Candidate forms: plain, or difference with a selected event
            // when the plain form is too collinear.
            let mut forms = vec![EventExpr::single(e)];
            for s in &selected {
                if s.minus.is_none() && s.event != e {
                    forms.push(EventExpr::diff(e, s.event));
                }
            }
            for form in forms {
                // Multicollinearity guard.
                let c = col(&form);
                let mut ok = true;
                for sc in &sel_cols {
                    if let Ok(r) = pearson(&c, sc) {
                        if r.abs() > opts.max_intercorrelation {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(form);
                let Ok(model) = PowerModel::fit(ds, &trial) else {
                    continue;
                };
                let Ok(q) = model.quality(ds) else { continue };
                let new_term_p = q.term_p_values.last().copied().unwrap_or(1.0);
                if q.mean_vif > opts.max_mean_vif || new_term_p > opts.max_p_value {
                    continue;
                }
                if best.as_ref().is_none_or(|(_, b)| q.adj_r_squared > *b) {
                    best = Some((form, q.adj_r_squared));
                }
                // Plain form accepted into comparison; no need to try
                // difference forms too if plain wasn't collinear.
                continue 'cand;
            }
        }
        let Some((term, r2)) = best else { break };
        if r2 - current < opts.min_gain {
            break;
        }
        current = r2;
        selected.push(term);
        path.push(r2);
    }

    if selected.is_empty() {
        return Err(StatsError::InvalidArgument("selection accepted no events"));
    }
    Ok(Selection {
        terms: selected,
        adj_r2_path: path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_platform::board::OdroidXu3;
    use gemstone_platform::dvfs::Cluster;
    use gemstone_workloads::suites;

    fn dataset() -> PowerDataset {
        let board = OdroidXu3::new();
        let names = [
            "mi-sha",
            "mi-crc32",
            "mi-fft",
            "whet-whetstone",
            "dhry-dhrystone",
            "lm-bw-mem-rd",
            "lm-lat-ops-int",
            "rl-neonspeed",
            "mi-dijkstra",
            "parsec-blackscholes-1",
            "mi-bitcount",
            "rl-memspeed-int",
        ];
        let specs: Vec<_> = names
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.08))
            .collect();
        crate::dataset::collect(&board, Cluster::BigA15, &specs, &[1000.0e6])
    }

    #[test]
    fn selection_improves_fit_monotonically() {
        let ds = dataset();
        let sel = select_events(&ds, &SelectionOptions::default()).unwrap();
        assert!(!sel.terms.is_empty());
        for w in sel.adj_r2_path.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        // Cycle counter is the seed term.
        assert_eq!(sel.terms[0], EventExpr::single(pmu::CPU_CYCLES));
    }

    #[test]
    fn restricted_pool_is_respected() {
        let ds = dataset();
        let opts = SelectionOptions {
            restricted_pool: Some(gem5_compatible_pool()),
            ..SelectionOptions::default()
        };
        let sel = select_events(&ds, &opts).unwrap();
        for t in &sel.terms {
            assert!(gem5_compatible_pool().contains(&t.event), "{:?}", t);
            assert_ne!(t.event, 0x15);
            assert_ne!(t.event, 0x75);
        }
    }

    #[test]
    fn excluded_events_never_selected() {
        let ds = dataset();
        let mut opts = SelectionOptions::default();
        opts.excluded.insert(pmu::CPU_CYCLES);
        opts.seed_with_cycles = false;
        let sel = select_events(&ds, &opts).unwrap();
        assert!(sel.terms.iter().all(|t| t.event != pmu::CPU_CYCLES));
    }

    #[test]
    fn max_terms_cap() {
        let ds = dataset();
        let opts = SelectionOptions {
            max_terms: 3,
            ..SelectionOptions::default()
        };
        let sel = select_events(&ds, &opts).unwrap();
        assert!(sel.terms.len() <= 3);
    }

    #[test]
    fn empty_dataset_is_error() {
        let ds = PowerDataset::new(Cluster::BigA15, Vec::new());
        assert!(select_events(&ds, &SelectionOptions::default()).is_err());
    }

    #[test]
    fn gem5_pool_excludes_problem_events() {
        let pool = gem5_compatible_pool();
        for bad in [0x0F_u16, 0x15, 0x75, 0x68, 0x69, 0x6A] {
            assert!(!pool.contains(&bad), "{bad:#x} must be excluded");
        }
        assert!(pool.contains(&0x11));
        assert!(pool.contains(&0x43)); // kept despite its error (§VI)
    }
}
