//! The "published coefficients" experiment (§V).
//!
//! The paper first validates the model coefficients *published* in \[8\]
//! (built on a different physical board) against data from this board and
//! finds a MAPE of 5.6 % — double the quoted 2.8 % — because "the board is
//! not identical and components such as the SoC, power sensors and voltage
//! regulators are subject to variation". Re-tuning the coefficients on
//! local data with the same event selection restores the accuracy.
//!
//! This module models that board-to-board variation: it perturbs a fitted
//! model's coefficients deterministically, producing the "published"
//! coefficient set a different board would have yielded.
//!
//! # Examples
//!
//! ```no_run
//! # fn model() -> gemstone_powmon::model::PowerModel { unimplemented!() }
//! use gemstone_powmon::published;
//!
//! let local = model();
//! let published = published::published_variant(&local, 0.06, 42);
//! // `published` now behaves like coefficients from another board.
//! ```

use crate::model::PowerModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives a "published" coefficient set from a locally fitted model by
/// applying deterministic multiplicative perturbations of relative
/// magnitude `variation` (1 σ, clamped to ±3 σ) — the systematic
/// board-to-board differences in silicon, sensors and regulators.
///
/// The intercept (static power) receives twice the variation: leakage is
/// the most process-sensitive component.
pub fn published_variant(model: &PowerModel, variation: f64, seed: u64) -> PowerModel {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = model.clone();
    out.map_coefficients(|idx, c| {
        let sigma = if idx == 0 { variation * 2.0 } else { variation };
        let g: f64 = {
            // Box–Muller.
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        c * (1.0 + sigma * g.clamp(-3.0, 3.0))
    });
    out
}

impl PowerModel {
    /// Applies a function to every coefficient (index 0 is the intercept of
    /// each per-frequency model). Used to derive perturbed variants.
    pub fn map_coefficients(&mut self, mut f: impl FnMut(usize, f64) -> f64) {
        for coeffs in self.coefficients_mut() {
            for (i, c) in coeffs.iter_mut().enumerate() {
                *c = f(i, *c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::model::EventExpr;
    use gemstone_platform::board::OdroidXu3;
    use gemstone_platform::dvfs::Cluster;
    use gemstone_uarch::pmu;
    use gemstone_workloads::suites;

    fn local_model() -> (PowerModel, crate::dataset::PowerDataset) {
        let board = OdroidXu3::new();
        let names = [
            "mi-sha",
            "mi-crc32",
            "mi-fft",
            "whet-whetstone",
            "lm-bw-mem-rd",
            "mi-dijkstra",
            "rl-neonspeed",
            "dhry-dhrystone",
        ];
        let specs: Vec<_> = names
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.08))
            .collect();
        let ds = dataset::collect(&board, Cluster::BigA15, &specs, &[1000.0e6]);
        let terms = vec![
            EventExpr::single(pmu::CPU_CYCLES),
            EventExpr::single(pmu::L1D_CACHE),
            EventExpr::single(pmu::L2D_CACHE),
        ];
        (PowerModel::fit(&ds, &terms).unwrap(), ds)
    }

    #[test]
    fn published_coefficients_are_worse_retuning_restores() {
        let (local, ds) = local_model();
        let q_local = local.quality(&ds).unwrap();
        // Average over several "other boards" — individual draws can be
        // lucky.
        let mean_published_mape = (0..6)
            .map(|seed| {
                published_variant(&local, 0.06, seed)
                    .quality(&ds)
                    .unwrap()
                    .mape
            })
            .sum::<f64>()
            / 6.0;
        // The foreign coefficients degrade accuracy …
        assert!(
            mean_published_mape > q_local.mape * 1.3,
            "published {} vs local {}",
            mean_published_mape,
            q_local.mape
        );
        // … and re-fitting with the same event selection restores it
        // (the §V claim that the *selection* transfers even when the
        // coefficients do not).
        let retuned = PowerModel::fit(&ds, &local.terms).unwrap();
        let q_retuned = retuned.quality(&ds).unwrap();
        assert!((q_retuned.mape - q_local.mape).abs() < 1e-9);
    }

    #[test]
    fn perturbation_is_deterministic() {
        let (local, ds) = local_model();
        let a = published_variant(&local, 0.06, 99).quality(&ds).unwrap();
        let b = published_variant(&local, 0.06, 99).quality(&ds).unwrap();
        assert_eq!(a.mape, b.mape);
    }

    #[test]
    fn zero_variation_is_identity() {
        let (local, ds) = local_model();
        let same = published_variant(&local, 0.0, 1);
        let q1 = local.quality(&ds).unwrap();
        let q2 = same.quality(&ds).unwrap();
        assert!((q1.mape - q2.mape).abs() < 1e-12);
    }
}
