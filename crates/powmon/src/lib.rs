#![warn(missing_docs)]

//! # gemstone-powmon
//!
//! Empirical, PMC-based CPU power modelling — a reimplementation of the
//! *Powmon* methodology (Walker et al., IEEE TCAD 2017, reference \[8\] of
//! the GemStone paper) used by §V of the reproduction target.
//!
//! The flow:
//!
//! 1. **Characterise** ([`dataset`]): run the 65-workload set on the
//!    (simulated) board at every DVFS point, recording average power and
//!    PMC event rates.
//! 2. **Select events** ([`selection`]): greedy forward selection of PMC
//!    events (optionally as *difference terms* like `0x1B−0x73` to reduce
//!    multicollinearity) maximising fit quality, subject to a restriction
//!    pool — GemStone feeds back "PMC selection restraints" excluding
//!    events that are unavailable or badly modelled in gem5.
//! 3. **Formulate** ([`model`]): per-DVFS-point linear models
//!    `P = β₀ + Σ βᵢ·rateᵢ`, with full quality statistics (MAPE, MPE, SER,
//!    adjusted R², VIF).
//! 4. **Apply** ([`apply`]): the same model can be driven by hardware PMC
//!    data *or* by gem5's equivalent event statistics — the paper's Fig. 2
//!    software tool — including the per-component power breakdown used by
//!    Fig. 7.
//! 5. **Export** ([`model::PowerModel::equations`]): emit the power
//!    equations in a form that can be inserted into gem5 for run-time
//!    power estimation.
//!
//! [`published`] models the "published coefficients from another board"
//! experiment (§V: 5.6 % MAPE with published coefficients → 2.8 % after
//! re-tuning).
//!
//! # Examples
//!
//! ```no_run
//! use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
//! use gemstone_powmon::{dataset, model::PowerModel, selection};
//! use gemstone_workloads::suites;
//!
//! let board = OdroidXu3::new();
//! let specs: Vec<_> = suites::power_suite().iter().map(|w| w.scaled(0.2)).collect();
//! let ds = dataset::collect(&board, Cluster::BigA15, &specs, Cluster::BigA15.frequencies());
//! let sel = selection::select_events(&ds, &selection::SelectionOptions::default()).unwrap();
//! let model = PowerModel::fit(&ds, &sel.terms).unwrap();
//! let q = model.quality(&ds).unwrap();
//! assert!(q.mape < 10.0);
//! ```

pub mod apply;
pub mod dataset;
pub mod fitting;
pub mod model;
pub mod published;
pub mod runtime;
pub mod selection;
