//! Run-time power estimation inside the simulator.
//!
//! The paper's Fig. 2 tool has two output paths: retrospective application
//! of the power model to finished runs ([`crate::apply`]) and "power
//! equations in a format that allows run-time power analysis in gem5
//! itself". This module is the second path: it drives the timing engine
//! instruction window by instruction window, evaluating the power model on
//! each window's event rates — producing a power *trace* rather than a
//! single average, exactly what a run-time governor study would consume.
//!
//! # Examples
//!
//! ```no_run
//! # fn model() -> gemstone_powmon::model::PowerModel { unimplemented!() }
//! use gemstone_powmon::runtime::RuntimePowerMonitor;
//! use gemstone_uarch::configs::cortex_a15_hw;
//! use gemstone_workloads::{gen::StreamGen, suites};
//!
//! let spec = suites::by_name("mi-fft").unwrap();
//! let monitor = RuntimePowerMonitor::new(model(), 1.0e9, 10_000);
//! let trace = monitor
//!     .run(cortex_a15_hw(), spec.threads, StreamGen::new(&spec))
//!     .unwrap();
//! println!("mean {:.2} W, peak {:.2} W", trace.mean_power_w(), trace.peak_power_w());
//! ```

use crate::model::PowerModel;
use gemstone_stats::{Result, StatsError};
use gemstone_uarch::core::{CoreConfig, Engine};
use gemstone_uarch::instr::Instr;
use gemstone_uarch::pmu::{event_counts, EventCode};
use std::collections::BTreeMap;

/// One window of the power trace.
#[derive(Debug, Clone, Copy)]
pub struct PowerSample {
    /// Window start (simulated seconds).
    pub t_start_s: f64,
    /// Window end (simulated seconds).
    pub t_end_s: f64,
    /// Estimated average power over the window (W).
    pub power_w: f64,
}

impl PowerSample {
    /// Window duration (s).
    pub fn duration_s(&self) -> f64 {
        self.t_end_s - self.t_start_s
    }

    /// Window energy (J).
    pub fn energy_j(&self) -> f64 {
        self.power_w * self.duration_s()
    }
}

/// A complete run-time power trace.
#[derive(Debug, Clone)]
pub struct PowerTrace {
    /// Per-window samples, in time order.
    pub samples: Vec<PowerSample>,
    /// Total simulated time (s).
    pub total_time_s: f64,
}

impl PowerTrace {
    /// Total energy (J).
    pub fn total_energy_j(&self) -> f64 {
        self.samples.iter().map(PowerSample::energy_j).sum()
    }

    /// Time-weighted mean power (W); 0 for an empty trace.
    pub fn mean_power_w(&self) -> f64 {
        if self.total_time_s > 0.0 {
            self.total_energy_j() / self.total_time_s
        } else {
            0.0
        }
    }

    /// Highest window power (W); 0 for an empty trace.
    pub fn peak_power_w(&self) -> f64 {
        self.samples.iter().map(|s| s.power_w).fold(0.0, f64::max)
    }

    /// A compact ASCII sparkline of the trace.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let peak = self.peak_power_w().max(1e-12);
        self.samples
            .iter()
            .map(|s| {
                let idx = ((s.power_w / peak) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect()
    }
}

/// Drives an engine with per-window power evaluation.
#[derive(Debug)]
pub struct RuntimePowerMonitor {
    model: PowerModel,
    freq_hz: f64,
    window_instructions: u64,
}

impl RuntimePowerMonitor {
    /// Creates a monitor evaluating `model` at `freq_hz` every
    /// `window_instructions` retired instructions (minimum 100).
    pub fn new(model: PowerModel, freq_hz: f64, window_instructions: u64) -> Self {
        RuntimePowerMonitor {
            model,
            freq_hz,
            window_instructions: window_instructions.max(100),
        }
    }

    /// Runs the stream on a fresh engine, sampling power per window.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] when the model has no
    /// coefficients for `freq_hz`.
    pub fn run(
        &self,
        cfg: CoreConfig,
        threads: u32,
        stream: impl Iterator<Item = Instr>,
    ) -> Result<PowerTrace> {
        // Fail early when the frequency is not covered.
        self.model.coefficients_at(self.freq_hz)?;

        let mut engine = Engine::new(cfg, self.freq_hz, threads);
        let mut samples = Vec::new();
        let mut last_counts: BTreeMap<EventCode, f64> = BTreeMap::new();
        let mut last_t = 0.0_f64;
        let mut in_window = 0_u64;
        let mut total_time = 0.0;

        let flush = |engine: &mut Engine,
                     last_counts: &mut BTreeMap<EventCode, f64>,
                     last_t: &mut f64,
                     samples: &mut Vec<PowerSample>|
         -> Result<()> {
            let snap = engine.finish();
            let now = snap.seconds;
            let dt = now - *last_t;
            if dt <= 0.0 {
                return Ok(());
            }
            let counts = event_counts(&snap.stats);
            let rates: BTreeMap<EventCode, f64> = counts
                .iter()
                .map(|(&c, &v)| {
                    let prev = last_counts.get(&c).copied().unwrap_or(0.0);
                    (c, (v - prev).max(0.0) / dt)
                })
                .collect();
            let power = self.model.predict(self.freq_hz, &rates)?;
            samples.push(PowerSample {
                t_start_s: *last_t,
                t_end_s: now,
                power_w: power,
            });
            *last_counts = counts;
            *last_t = now;
            Ok(())
        };

        for instr in stream {
            engine.step(&instr);
            in_window += 1;
            if in_window >= self.window_instructions {
                in_window = 0;
                flush(&mut engine, &mut last_counts, &mut last_t, &mut samples)?;
            }
        }
        if in_window > 0 {
            flush(&mut engine, &mut last_counts, &mut last_t, &mut samples)?;
        }
        if let Some(last) = samples.last() {
            total_time = last.t_end_s;
        }
        if samples.is_empty() {
            return Err(StatsError::NotEnoughData {
                needed: 1,
                available: 0,
            });
        }
        Ok(PowerTrace {
            samples,
            total_time_s: total_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset;
    use crate::selection::{self, SelectionOptions};
    use gemstone_platform::board::OdroidXu3;
    use gemstone_platform::dvfs::Cluster;
    use gemstone_uarch::configs::cortex_a15_hw;
    use gemstone_workloads::gen::StreamGen;
    use gemstone_workloads::spec::{InstrMix, PhaseSpec, Suite, WorkloadSpec};
    use gemstone_workloads::suites;

    fn model() -> PowerModel {
        let board = OdroidXu3::new();
        // Three distinct SIMD intensities (neonspeed 0.40, jpeg-decode
        // 0.12, jpeg-encode 0.10, rest 0) so the ASE_SPEC coefficient is
        // identified by a gradient rather than a single outlier point.
        let specs: Vec<_> = [
            "mi-sha",
            "mi-fft",
            "lm-bw-mem-rd",
            "mi-bitcount",
            "rl-neonspeed",
            "mi-jpeg-encode",
            "mi-jpeg-decode",
            "dhry-dhrystone",
            "mi-dijkstra",
            "whet-whetstone",
        ]
        .iter()
        .map(|n| suites::by_name(n).unwrap().scaled(0.08))
        .collect();
        let ds = dataset::collect(&board, Cluster::BigA15, &specs, &[1.0e9]);
        // Stepwise-selected terms, exactly as the real workflow fits them.
        // A small hand-picked term list is brittle here: omitted per-op
        // energies get absorbed into whatever terms they correlate with,
        // and the SIMD coefficient can come out with the wrong sign.
        let sel = selection::select_events(&ds, &SelectionOptions::default()).unwrap();
        PowerModel::fit(&ds, &sel.terms).unwrap()
    }

    #[test]
    fn trace_covers_the_run_and_energy_adds_up() {
        let spec = suites::by_name("mi-fft").unwrap().scaled(0.2);
        let monitor = RuntimePowerMonitor::new(model(), 1.0e9, 5_000);
        let trace = monitor
            .run(cortex_a15_hw(), spec.threads, StreamGen::new(&spec))
            .unwrap();
        assert!(
            trace.samples.len() >= 5,
            "samples = {}",
            trace.samples.len()
        );
        // Windows tile the run.
        for w in trace.samples.windows(2) {
            assert!((w[0].t_end_s - w[1].t_start_s).abs() < 1e-12);
        }
        // Energy = Σ window energies = mean power × total time.
        let e = trace.total_energy_j();
        assert!(e > 0.0);
        assert!((trace.mean_power_w() * trace.total_time_s - e).abs() < 1e-9);
        assert!(trace.peak_power_w() >= trace.mean_power_w());
    }

    #[test]
    fn phase_changes_show_in_the_trace() {
        // A two-phase workload: integer then SIMD-heavy. The trace should
        // show distinctly different power in the two halves.
        let mut p1 = PhaseSpec::default_phase();
        p1.weight = 1.0;
        let mut p2 = PhaseSpec::default_phase();
        p2.weight = 1.0;
        p2.mix = InstrMix {
            simd: 0.5,
            ..InstrMix::fp_baseline()
        };
        let spec = WorkloadSpec::builder("phased-power", Suite::Whetstone)
            .instructions(60_000)
            .phases(vec![p1, p2])
            .build();
        let monitor = RuntimePowerMonitor::new(model(), 1.0e9, 3_000);
        let trace = monitor
            .run(cortex_a15_hw(), 1, StreamGen::new(&spec))
            .unwrap();
        let n = trace.samples.len();
        let first: f64 = trace.samples[..n / 2]
            .iter()
            .map(|s| s.power_w)
            .sum::<f64>()
            / (n / 2) as f64;
        let second: f64 = trace.samples[n / 2..]
            .iter()
            .map(|s| s.power_w)
            .sum::<f64>()
            / (n - n / 2) as f64;
        assert!(
            (first - second).abs() / first > 0.02,
            "phases should differ: {first} vs {second}"
        );
        // Sparkline renders one glyph per sample.
        assert_eq!(trace.sparkline().chars().count(), n);
    }

    #[test]
    fn wrong_frequency_fails_early() {
        let spec = suites::by_name("mi-sha").unwrap().scaled(0.05);
        let monitor = RuntimePowerMonitor::new(model(), 1.4e9, 5_000);
        assert!(monitor
            .run(cortex_a15_hw(), 1, StreamGen::new(&spec))
            .is_err());
    }
}
