//! The end-to-end power-modelling workflow as one fallible library call.
//!
//! `gemstone power` (the CLI) and the `power-model` job kind of
//! `gemstone serve` run exactly the same experiment: characterise a
//! cluster, select events against the gem5-compatible pool, fit the
//! per-DVFS-point models and score them. Before the service existed that
//! sequence lived inline in the CLI, stitched together with `eprintln!`
//! and early exits — unusable from a daemon. This module is the extracted
//! request/response form: inputs in, [`FittedPowerModel`] or an error
//! out, no I/O, no process exit.
//!
//! # Examples
//!
//! ```no_run
//! use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
//! use gemstone_powmon::{fitting, selection::SelectionOptions};
//! use gemstone_workloads::suites;
//!
//! let board = OdroidXu3::new();
//! let specs: Vec<_> = suites::power_suite().iter().map(|w| w.scaled(0.2)).collect();
//! let fitted = fitting::fit_cluster_model(
//!     &board,
//!     Cluster::BigA15,
//!     &specs,
//!     &SelectionOptions::gem5_restricted(),
//! )?;
//! assert!(fitted.quality.mape < 10.0);
//! # Ok::<(), gemstone_stats::StatsError>(())
//! ```

use crate::dataset::{self, PowerDataset};
use crate::model::{ModelQuality, PowerModel};
use crate::selection::{self, Selection, SelectionOptions};
use gemstone_platform::board::OdroidXu3;
use gemstone_platform::dvfs::Cluster;
use gemstone_stats::Result;
use gemstone_workloads::spec::WorkloadSpec;

/// Everything the power-modelling workflow produces, kept together so
/// callers can render any slice of it (the CLI prints quality and
/// equations; the service serialises quality into the job artefact).
#[derive(Debug, Clone)]
pub struct FittedPowerModel {
    /// The characterisation dataset the model was fitted on.
    pub dataset: PowerDataset,
    /// The event-selection outcome (terms and the search trace).
    pub selection: Selection,
    /// The fitted per-DVFS-point linear models.
    pub model: PowerModel,
    /// Quality statistics of `model` evaluated on `dataset`.
    pub quality: ModelQuality,
}

impl SelectionOptions {
    /// The paper's configuration: selection restricted to the
    /// gem5-compatible event pool, everything else default. This is what
    /// both the CLI and the service use.
    pub fn gem5_restricted() -> SelectionOptions {
        SelectionOptions {
            restricted_pool: Some(selection::gem5_compatible_pool()),
            ..SelectionOptions::default()
        }
    }
}

/// Characterises `cluster` over `workloads` at every DVFS point, selects
/// events per `opts`, fits and scores the power model.
///
/// Deterministic: the same inputs produce bit-identical datasets, terms
/// and coefficients (collection order is workload-major regardless of
/// worker-thread count), which is what lets the service coalesce
/// duplicate power-model jobs onto one execution.
///
/// # Errors
///
/// Propagates [`gemstone_stats::StatsError`] from event selection,
/// fitting or quality evaluation (e.g. degenerate regressor matrices when
/// the workload set is too small).
pub fn fit_cluster_model(
    board: &OdroidXu3,
    cluster: Cluster,
    workloads: &[WorkloadSpec],
    opts: &SelectionOptions,
) -> Result<FittedPowerModel> {
    let dataset = dataset::collect(board, cluster, workloads, cluster.frequencies());
    let selection = selection::select_events(&dataset, opts)?;
    let model = PowerModel::fit(&dataset, &selection.terms)?;
    let quality = model.quality(&dataset)?;
    Ok(FittedPowerModel {
        dataset,
        selection,
        model,
        quality,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_workloads::suites;

    #[test]
    fn workflow_matches_the_hand_stitched_sequence() {
        let board = OdroidXu3::new();
        let specs: Vec<_> = suites::power_suite()
            .iter()
            .take(12)
            .map(|w| w.scaled(0.02))
            .collect();
        let opts = SelectionOptions::gem5_restricted();
        let fitted = fit_cluster_model(&board, Cluster::BigA15, &specs, &opts).unwrap();

        // Identical to running the stages by hand — the CLI's former
        // inline code path.
        let ds = dataset::collect(
            &board,
            Cluster::BigA15,
            &specs,
            Cluster::BigA15.frequencies(),
        );
        let sel = selection::select_events(&ds, &opts).unwrap();
        let model = PowerModel::fit(&ds, &sel.terms).unwrap();
        let q = model.quality(&ds).unwrap();
        assert_eq!(fitted.selection.terms, sel.terms);
        assert_eq!(fitted.quality.mape, q.mape);
        assert_eq!(fitted.model.equations(), model.equations());

        // And deterministic across invocations (the coalescing premise).
        let again = fit_cluster_model(&board, Cluster::BigA15, &specs, &opts).unwrap();
        assert_eq!(again.quality.mape, fitted.quality.mape);
    }
}
