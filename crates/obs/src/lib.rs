//! Unified observability for GemStone: a process-wide metrics registry,
//! a span/timer API, and exporters.
//!
//! The paper's whole methodology is observability applied to CPU models —
//! it diagnoses gem5's errors purely from counter streams. This crate
//! instruments the *simulator itself* the same way:
//!
//! * [`registry`] — lock-free [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s under canonical dotted names (`simcache.hits`,
//!   `trace_cache.evictions`, `engine.instructions`, …). The execution
//!   layers register their counters here instead of keeping private
//!   atomics, so one [`Registry::global`] snapshot sees everything.
//! * [`span`] — RAII timing guards. When tracing is disabled (the
//!   default) a span costs one relaxed atomic load; when enabled it
//!   records a `(name, thread, start, duration, depth)` event into the
//!   process-wide [`SpanLog`] and folds the duration into a
//!   `span.<name>.seconds` histogram.
//! * [`export`] — Prometheus text format for the registry, Chrome
//!   trace-event JSON (loadable in `chrome://tracing` / Perfetto) for the
//!   span log, and a JSONL stream for scripting.
//! * [`env`] — the shared environment-variable parser used by every
//!   `GEMSTONE_*` knob; invalid values produce a one-time stderr warning
//!   naming the variable and the fallback instead of being silently
//!   ignored.
//! * [`profile`] — rebuilds the span tree from the flat event log (or a
//!   JSONL journal), aggregates inclusive/self time per span name and
//!   walks the critical path; `gemstone perf` renders it.
//! * [`flight`] — a bounded lock-free flight-recorder ring of recent
//!   span/note events, dumped on faults, quarantine, panic or demand.
//! * [`json`] — the minimal JSON value parser backing journal re-ingest
//!   (this crate stays dependency-free).
//!
//! Tracing is switched on by the `GEMSTONE_OBS` environment variable (any
//! value other than `0` / `false` / `off` / empty) or programmatically via
//! [`set_enabled`]. Counters in the registry always count — they are a
//! handful of relaxed atomic adds per *simulation*, not per instruction —
//! only the span layer is gated.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs as obs;
//!
//! obs::set_enabled(true);
//! let c = obs::Registry::global().counter("example.events");
//! {
//!     let _span = obs::span::span("example.stage");
//!     c.add(3);
//! }
//! assert!(c.get() >= 3);
//! let dump = obs::export::prometheus(obs::Registry::global());
//! assert!(dump.contains("example_events"));
//! ```

pub mod env;
pub mod export;
pub mod flight;
pub mod http;
pub mod json;
pub mod profile;
pub mod registry;
pub mod span;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use span::{SpanEvent, SpanLog};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

/// Environment variable enabling span tracing (`1`/`true`/anything except
/// `0`, `false`, `off` or empty).
pub const OBS_ENV: &str = "GEMSTONE_OBS";

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENABLED_INIT: Once = Once::new();

fn ensure_init() {
    ENABLED_INIT.call_once(|| {
        let on = std::env::var(OBS_ENV).is_ok_and(|v| {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off")
        });
        if on {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
}

/// Whether span tracing is enabled. After the first call this is a single
/// relaxed atomic load (plus the `Once` fast path).
pub fn enabled() -> bool {
    ensure_init();
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables span tracing for the whole process, overriding the
/// `GEMSTONE_OBS` environment variable.
pub fn set_enabled(on: bool) {
    ensure_init();
    ENABLED.store(on, Ordering::Relaxed);
}
