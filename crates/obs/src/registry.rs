//! The process-wide metrics registry: lock-free counters, gauges and
//! fixed-bucket histograms under canonical dotted names.
//!
//! Handles are `Arc`'d, so an instrumented structure keeps its own cheap
//! handle (one relaxed atomic op per update) while the registry retains a
//! reference for export. Structures that exist in multiple instances (the
//! simulation and trace caches in tests) use *detached* handles
//! ([`Counter::default`]) and only their process-wide instance registers
//! under the canonical name — per-instance counters in tests stay
//! isolated.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs::Registry;
//!
//! let r = Registry::new();
//! let hits = r.counter("demo.hits");
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! assert!(std::sync::Arc::ptr_eq(&hits, &r.counter("demo.hits")));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-tolerant read lock: a panicked writer cannot corrupt a map of
/// `Arc` handles badly enough to matter for metrics.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a detached (unregistered) counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (per-run deltas; see `SimCache::clear`).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Adds `v` to an `AtomicU64` holding `f64` bits.
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

/// A last-value-wins instantaneous measurement (resident bytes, MIPS, …).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the gauge (atomic read-modify-write).
    pub fn add(&self, v: f64) {
        f64_add(&self.0, v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed upper-bound buckets used for span-duration histograms (seconds).
pub const DEFAULT_TIME_BOUNDS: &[f64] = &[0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0];

/// Power-of-two latency buckets (seconds), 2⁻²⁰ s (~1 µs) through 2⁴ s
/// (16 s). Log2 spacing keeps the bucket count fixed while covering the
/// seven decades between a cache lookup and a full detailed simulation;
/// quantiles interpolate within a bucket, so the worst-case relative
/// error is bounded by the 2× bucket ratio.
pub fn log2_time_bounds() -> &'static [f64] {
    static BOUNDS: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDS.get_or_init(|| (-20..=4).map(|e| 2.0f64.powi(e)).collect())
}

/// Estimates the `q`-quantile (0 ≤ q ≤ 1) of a fixed-bucket histogram by
/// linear interpolation inside the bucket holding the target rank, the
/// same estimate `histogram_quantile` computes server-side in Prometheus.
/// Observations in the overflow bucket clamp to the largest finite
/// bound. Returns `None` when the histogram is empty or malformed.
pub fn quantile_from_buckets(bounds: &[f64], buckets: &[u64], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 || bounds.is_empty() || buckets.len() != bounds.len() + 1 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        let reached = cumulative + c;
        if c > 0 && reached as f64 >= target {
            if i == bounds.len() {
                return Some(bounds[bounds.len() - 1]);
            }
            let lower = if i == 0 { 0.0 } else { bounds[i - 1] };
            let frac = (target - cumulative as f64) / c as f64;
            return Some(lower + (bounds[i] - lower) * frac);
        }
        cumulative = reached;
    }
    Some(bounds[bounds.len() - 1])
}

/// A fixed-bucket histogram: per-bucket counts, total count and sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound plus the overflow (+Inf) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as `f64` bits.
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_add(&self.sum, v);
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile of the observations (see
    /// [`quantile_from_buckets`]); `None` while the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.bounds, &self.bucket_counts(), q)
    }
}

/// One exported metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(f64),
    /// Histogram state: bounds, per-bucket counts (incl. overflow), sum,
    /// count.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts (last entry is the overflow bucket).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

impl MetricValue {
    /// Estimated `q`-quantile for histogram values (see
    /// [`quantile_from_buckets`]); `None` for counters, gauges and empty
    /// histograms.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            MetricValue::Histogram {
                bounds, buckets, ..
            } => quantile_from_buckets(bounds, buckets, q),
            _ => None,
        }
    }
}

/// One named sample from a [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Canonical dotted metric name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A registry of named metrics. Get-or-register is idempotent: the same
/// name always yields the same handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// Creates an empty registry (isolated; for tests).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry every instrumented layer registers into.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read(&self.counters).get(name) {
            return c.clone();
        }
        write(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read(&self.gauges).get(name) {
            return g.clone();
        }
        write(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` on first use (later callers get the existing buckets).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return h.clone();
        }
        write(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::with_bounds(bounds)))
            .clone()
    }

    /// A consistent-enough snapshot of every metric, sorted by name.
    /// Individual values are read atomically; the set is not a global
    /// atomic cut (adequate for reporting, as with hardware PMU reads).
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out: Vec<Sample> = Vec::new();
        for (name, c) in read(&self.counters).iter() {
            out.push(Sample {
                name: name.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for (name, g) in read(&self.gauges).iter() {
            out.push(Sample {
                name: name.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, h) in read(&self.histograms).iter() {
            out.push(Sample {
                name: name.clone(),
                value: MetricValue::Histogram {
                    bounds: h.bounds().to_vec(),
                    buckets: h.bucket_counts(),
                    sum: h.sum(),
                    count: h.count(),
                },
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Resets every counter and gauge to zero (histograms are left; used by
    /// tests needing per-run deltas).
    pub fn reset(&self) {
        for c in read(&self.counters).values() {
            c.reset();
        }
        for g in read(&self.gauges).values() {
            g.set(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_identity() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::default();
        g.set(2.5);
        g.add(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::with_bounds(&[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 0.2] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 55.7).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        // 100 observations spread 50/30/20 across the three buckets.
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..30 {
            h.observe(1.5);
        }
        for _ in 0..20 {
            h.observe(3.0);
        }
        // p50 lands exactly at the top of the first bucket.
        assert!((h.quantile(0.5).unwrap() - 1.0).abs() < 1e-9);
        // p80 at the top of the second, p90 halfway up the third.
        assert!((h.quantile(0.8).unwrap() - 2.0).abs() < 1e-9);
        assert!((h.quantile(0.9).unwrap() - 3.0).abs() < 1e-9);
        // Extremes clamp to the bucket edges.
        assert!(h.quantile(0.0).unwrap() > 0.0);
        assert!((h.quantile(1.0).unwrap() - 4.0).abs() < 1e-9);
        // Overflow observations clamp to the largest finite bound.
        let o = Histogram::with_bounds(&[1.0]);
        o.observe(100.0);
        assert!((o.quantile(0.99).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log2_bounds_are_ascending_powers_of_two() {
        let b = log2_time_bounds();
        assert_eq!(b.len(), 25);
        assert!((b[0] - 2.0f64.powi(-20)).abs() < 1e-15);
        assert!((b[b.len() - 1] - 16.0).abs() < 1e-12);
        for w in b.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = Registry::new();
        let c = r.counter("contended");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn snapshot_stays_consistent_under_parallel_writers() {
        const WRITERS: usize = 4;
        const ROUNDS: u64 = 20_000;
        let r = Registry::new();
        let stop = AtomicU64::new(0);
        std::thread::scope(|s| {
            let writers: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let r = &r;
                    s.spawn(move || {
                        // Get-or-register races against the snapshotter on
                        // purpose: two writers share each counter name, the
                        // histogram is shared by all four.
                        let c = r.counter(&format!("stress.count.{}", w % 2));
                        let h = r.histogram("stress.lat", &[1.0, 2.0, 4.0]);
                        let g = r.gauge(&format!("stress.level.{w}"));
                        for i in 0..ROUNDS {
                            c.inc();
                            h.observe((i % 5) as f64);
                            g.set(i as f64);
                        }
                    })
                })
                .collect();
            let r = &r;
            let stop = &stop;
            let watcher = s.spawn(move || {
                let mut floors: BTreeMap<String, u64> = BTreeMap::new();
                let mut rounds = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    rounds += 1;
                    for sample in r.snapshot() {
                        match sample.value {
                            MetricValue::Counter(v) => {
                                let floor = floors.entry(sample.name).or_insert(0);
                                assert!(v >= *floor, "counter went backwards");
                                *floor = v;
                            }
                            MetricValue::Gauge(v) => {
                                assert!(v.is_finite(), "gauge {} not finite", sample.name);
                            }
                            MetricValue::Histogram {
                                bounds,
                                buckets,
                                sum,
                                count,
                            } => {
                                assert_eq!(buckets.len(), bounds.len() + 1);
                                assert!(sum >= 0.0);
                                let floor = floors.entry(sample.name).or_insert(0);
                                assert!(count >= *floor, "histogram count went backwards");
                                *floor = count;
                            }
                        }
                    }
                }
                rounds
            });
            for w in writers {
                w.join().expect("writer panicked");
            }
            stop.store(1, Ordering::Relaxed);
            assert!(watcher.join().expect("watcher panicked") >= 1);
        });
        // Quiescent totals are exact: nothing was lost or double-counted.
        let total: u64 = [0, 1]
            .iter()
            .map(|i| r.counter(&format!("stress.count.{i}")).get())
            .sum();
        assert_eq!(total, WRITERS as u64 * ROUNDS);
        let h = r.histogram("stress.lat", &[1.0, 2.0, 4.0]);
        assert_eq!(h.count(), WRITERS as u64 * ROUNDS);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        let p99 = h.quantile(0.99).expect("non-empty histogram");
        assert!((0.0..=4.0).contains(&p99));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.level").set(1.5);
        r.histogram("c.hist", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.level", "b.count", "c.hist"]);
    }
}
