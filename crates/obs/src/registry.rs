//! The process-wide metrics registry: lock-free counters, gauges and
//! fixed-bucket histograms under canonical dotted names.
//!
//! Handles are `Arc`'d, so an instrumented structure keeps its own cheap
//! handle (one relaxed atomic op per update) while the registry retains a
//! reference for export. Structures that exist in multiple instances (the
//! simulation and trace caches in tests) use *detached* handles
//! ([`Counter::default`]) and only their process-wide instance registers
//! under the canonical name — per-instance counters in tests stay
//! isolated.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs::Registry;
//!
//! let r = Registry::new();
//! let hits = r.counter("demo.hits");
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! assert!(std::sync::Arc::ptr_eq(&hits, &r.counter("demo.hits")));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-tolerant read lock: a panicked writer cannot corrupt a map of
/// `Arc` handles badly enough to matter for metrics.
fn read<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a detached (unregistered) counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero (per-run deltas; see `SimCache::clear`).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Adds `v` to an `AtomicU64` holding `f64` bits.
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => cur = observed,
        }
    }
}

/// A last-value-wins instantaneous measurement (resident bytes, MIPS, …).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the gauge (atomic read-modify-write).
    pub fn add(&self, v: f64) {
        f64_add(&self.0, v);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed upper-bound buckets used for span-duration histograms (seconds).
pub const DEFAULT_TIME_BOUNDS: &[f64] = &[0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0];

/// A fixed-bucket histogram: per-bucket counts, total count and sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound plus the overflow (+Inf) bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, as `f64` bits.
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram with the given ascending upper bounds.
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        f64_add(&self.sum, v);
    }

    /// Bucket upper bounds (the overflow bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, one per bound plus the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Ordering::Relaxed))
    }
}

/// One exported metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(f64),
    /// Histogram state: bounds, per-bucket counts (incl. overflow), sum,
    /// count.
    Histogram {
        /// Bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts (last entry is the overflow bucket).
        buckets: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// One named sample from a [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct Sample {
    /// Canonical dotted metric name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A registry of named metrics. Get-or-register is idempotent: the same
/// name always yields the same handle.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// Creates an empty registry (isolated; for tests).
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry every instrumented layer registers into.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read(&self.counters).get(name) {
            return c.clone();
        }
        write(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read(&self.gauges).get(name) {
            return g.clone();
        }
        write(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it with
    /// `bounds` on first use (later callers get the existing buckets).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return h.clone();
        }
        write(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::with_bounds(bounds)))
            .clone()
    }

    /// A consistent-enough snapshot of every metric, sorted by name.
    /// Individual values are read atomically; the set is not a global
    /// atomic cut (adequate for reporting, as with hardware PMU reads).
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out: Vec<Sample> = Vec::new();
        for (name, c) in read(&self.counters).iter() {
            out.push(Sample {
                name: name.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for (name, g) in read(&self.gauges).iter() {
            out.push(Sample {
                name: name.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for (name, h) in read(&self.histograms).iter() {
            out.push(Sample {
                name: name.clone(),
                value: MetricValue::Histogram {
                    bounds: h.bounds().to_vec(),
                    buckets: h.bucket_counts(),
                    sum: h.sum(),
                    count: h.count(),
                },
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Resets every counter and gauge to zero (histograms are left; used by
    /// tests needing per-run deltas).
    pub fn reset(&self) {
        for c in read(&self.counters).values() {
            c.reset();
        }
        for g in read(&self.gauges).values() {
            g.set(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_identity() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        a.reset();
        assert_eq!(b.get(), 0);
    }

    #[test]
    fn gauge_set_add() {
        let g = Gauge::default();
        g.set(2.5);
        g.add(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let h = Histogram::with_bounds(&[1.0, 10.0]);
        for v in [0.5, 5.0, 50.0, 0.2] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 55.7).abs() < 1e-9);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = Registry::new();
        let c = r.counter("contended");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.gauge("a.level").set(1.5);
        r.histogram("c.hist", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.level", "b.count", "c.hist"]);
    }
}
