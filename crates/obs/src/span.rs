//! RAII span tracing: nested, per-thread wall-clock timing of pipeline
//! stages, engine runs and any other scoped work.
//!
//! [`span`] returns a guard; dropping it records a [`SpanEvent`] into the
//! process-wide [`SpanLog`] and folds the duration into the registry
//! histogram `span.<name>.seconds`. When tracing is disabled
//! ([`crate::enabled`] is false — the default) the guard is a no-op whose
//! construction costs one relaxed atomic load and whose drop costs a
//! branch: the clock is never read.
//!
//! Spans nest lexically per thread; each event records its depth and a
//! small per-thread id, which is exactly what the Chrome trace-event
//! exporter needs to render a correctly nested flame view.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs as obs;
//!
//! obs::set_enabled(true);
//! obs::span::SpanLog::global().clear();
//! {
//!     let _outer = obs::span::span("doc.outer");
//!     let _inner = obs::span::span("doc.inner");
//! }
//! let events = obs::span::SpanLog::global().snapshot();
//! assert_eq!(events.len(), 2);
//! obs::set_enabled(false);
//! ```

use crate::registry::{Registry, DEFAULT_TIME_BOUNDS};
use std::borrow::Cow;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Poison-tolerant lock: a panicked recorder leaves at worst one event
/// half-pushed, which `Vec` cannot actually expose.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (dotted, like metric names).
    pub name: Cow<'static, str>,
    /// Small per-process thread id (1-based, assigned on first span).
    pub tid: u64,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Lexical nesting depth on its thread (0 = top level).
    pub depth: u32,
}

/// The process-wide log of completed spans.
#[derive(Debug, Default)]
pub struct SpanLog {
    events: Mutex<Vec<SpanEvent>>,
}

static GLOBAL: OnceLock<SpanLog> = OnceLock::new();

impl SpanLog {
    /// The process-wide span log.
    pub fn global() -> &'static SpanLog {
        GLOBAL.get_or_init(SpanLog::default)
    }

    /// Appends one event.
    pub fn record(&self, ev: SpanEvent) {
        lock(&self.events).push(ev);
    }

    /// A copy of every recorded event, in completion order.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        lock(&self.events).clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.events).is_empty()
    }

    /// Drops every recorded event.
    pub fn clear(&self) {
        lock(&self.events).clear();
    }
}

/// The instant all span timestamps are relative to (first span wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// An in-flight span; records itself on drop. No-op when tracing was
/// disabled at construction.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: Cow<'static, str>,
    start: Instant,
    depth: u32,
}

/// Opens a span. The guard records the elapsed time when dropped.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let depth = DEPTH.with(|d| {
        let cur = d.get();
        d.set(cur + 1);
        cur
    });
    // Touch the epoch before reading the start time so start >= epoch.
    epoch();
    SpanGuard {
        live: Some(LiveSpan {
            name: name.into(),
            start: Instant::now(),
            depth,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let end = Instant::now();
        let dur = end - live.start;
        DEPTH.with(|d| d.set(live.depth));
        let start_us = live
            .start
            .checked_duration_since(epoch())
            .map_or(0, |d| d.as_micros() as u64);
        Registry::global()
            .histogram(&format!("span.{}.seconds", live.name), DEFAULT_TIME_BOUNDS)
            .observe(dur.as_secs_f64());
        SpanLog::global().record(SpanEvent {
            name: live.name,
            tid: thread_id(),
            start_us,
            dur_us: dur.as_micros() as u64,
            depth: live.depth,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag is process-global, so everything that toggles it
    // lives in this single test to avoid races with the parallel runner.
    #[test]
    fn span_lifecycle() {
        // Disabled: nothing is recorded.
        crate::set_enabled(false);
        let before = SpanLog::global().len();
        {
            let _g = span("test.disabled");
        }
        assert_eq!(SpanLog::global().len(), before);

        // Enabled: nesting, depth and containment.
        crate::set_enabled(true);
        let marker = "test.nest.outer";
        {
            let _outer = span(marker);
            let _inner = span("test.nest.inner");
        }
        // Threads get distinct tids.
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = span("test.threaded");
                });
            }
        });
        crate::set_enabled(false);

        let events = SpanLog::global().snapshot();
        let outer = events
            .iter()
            .find(|e| e.name == marker)
            .expect("outer span recorded");
        let inner = events
            .iter()
            .find(|e| e.name == "test.nest.inner")
            .expect("inner span recorded");
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .filter(|e| e.name == "test.threaded")
            .map(|e| e.tid)
            .collect();
        assert!(tids.len() >= 2, "tids: {tids:?}");
        // The duration also landed in the span histogram.
        let snap = Registry::global().snapshot();
        assert!(snap
            .iter()
            .any(|s| s.name == format!("span.{marker}.seconds")));
    }
}
