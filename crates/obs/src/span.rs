//! RAII span tracing: nested, per-thread wall-clock timing of pipeline
//! stages, engine runs and any other scoped work, with parent/child
//! links and typed attributes so the flat event log reconstructs into a
//! profile tree (see [`crate::profile`]).
//!
//! [`span`] returns a guard; dropping it records a [`SpanEvent`] into the
//! process-wide [`SpanLog`] and folds the duration into the registry
//! histogram `span.<name>.seconds`. When tracing is disabled
//! ([`crate::enabled`] is false — the default) the guard is a no-op whose
//! construction costs one relaxed atomic load and whose drop costs a
//! branch: the clock is never read and no id is allocated.
//!
//! Spans nest lexically per thread; each open span pushes its
//! process-unique id onto a thread-local stack, so a child records the
//! enclosing span as its parent. Work handed to another thread keeps its
//! logical parent by capturing [`current_id`] before the spawn and
//! opening the worker's span with [`span_with_parent`] — the id crosses
//! the thread boundary even though the nesting stack cannot.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs as obs;
//!
//! obs::set_enabled(true);
//! obs::span::SpanLog::global().clear();
//! {
//!     let _outer = obs::span::span("doc.outer");
//!     let parent = obs::span::current_id();
//!     std::thread::scope(|s| {
//!         s.spawn(move || {
//!             let _worker = obs::span::span_with_parent("doc.worker", parent)
//!                 .attr("worker", 0);
//!         });
//!     });
//! }
//! let events = obs::span::SpanLog::global().snapshot();
//! let outer = events.iter().find(|e| e.name == "doc.outer").unwrap();
//! let worker = events.iter().find(|e| e.name == "doc.worker").unwrap();
//! assert_eq!(worker.parent, outer.id);
//! obs::set_enabled(false);
//! ```

use crate::registry::{Registry, DEFAULT_TIME_BOUNDS};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Poison-tolerant lock: a panicked recorder leaves at worst one event
/// half-pushed, which `Vec` cannot actually expose.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (dotted, like metric names).
    pub name: Cow<'static, str>,
    /// Process-unique span id (1-based; assigned when the span opens).
    pub id: u64,
    /// Id of the logical parent span, or 0 for a root span.
    pub parent: u64,
    /// Small per-process thread id (1-based, assigned on first span).
    pub tid: u64,
    /// Start time in microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Lexical nesting depth on its thread (0 = top level).
    pub depth: u32,
    /// Typed attributes (workload, tier, lane count, segment index, …).
    pub attrs: Vec<(Cow<'static, str>, String)>,
}

/// The process-wide log of completed spans.
#[derive(Debug, Default)]
pub struct SpanLog {
    events: Mutex<Vec<SpanEvent>>,
}

static GLOBAL: OnceLock<SpanLog> = OnceLock::new();

impl SpanLog {
    /// The process-wide span log.
    pub fn global() -> &'static SpanLog {
        GLOBAL.get_or_init(SpanLog::default)
    }

    /// Appends one event.
    pub fn record(&self, ev: SpanEvent) {
        lock(&self.events).push(ev);
    }

    /// A copy of every recorded event, in completion order.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        lock(&self.events).clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        lock(&self.events).len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.events).is_empty()
    }

    /// Drops every recorded event.
    pub fn clear(&self) {
        lock(&self.events).clear();
    }
}

/// The instant all span timestamps are relative to (first span wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: Cell<u64> = const { Cell::new(0) };
    }
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// Microseconds since the process trace epoch, for flight-recorder
/// notes stamped outside any span.
pub(crate) fn now_us() -> u64 {
    Instant::now()
        .checked_duration_since(epoch())
        .map_or(0, |d| d.as_micros() as u64)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Ids of the spans currently open on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost span open on this thread, or 0 when none is
/// (or tracing is disabled). Capture this before spawning workers and
/// hand it to [`span_with_parent`] so cross-thread work stays attributed
/// to its logical parent.
#[inline]
pub fn current_id() -> u64 {
    if !crate::enabled() {
        return 0;
    }
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// An in-flight span; records itself on drop. No-op when tracing was
/// disabled at construction.
#[must_use = "a span measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    name: Cow<'static, str>,
    id: u64,
    parent: u64,
    start: Instant,
    depth: u32,
    attrs: Vec<(Cow<'static, str>, String)>,
}

/// Opens a span nested under the innermost span open on this thread.
/// The guard records the elapsed time when dropped.
#[inline]
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    open(
        name.into(),
        STACK.with(|s| s.borrow().last().copied()).unwrap_or(0),
    )
}

/// Opens a span whose logical parent is `parent` (a span id captured via
/// [`current_id`], possibly on another thread; 0 opens a root span).
/// Nested spans opened on this thread while the guard lives chain under
/// it as usual.
#[inline]
pub fn span_with_parent(name: impl Into<Cow<'static, str>>, parent: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    open(name.into(), parent)
}

fn open(name: Cow<'static, str>, parent: u64) -> SpanGuard {
    let id = next_span_id();
    let depth = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let depth = stack.len() as u32;
        stack.push(id);
        depth
    });
    // Touch the epoch before reading the start time so start >= epoch.
    epoch();
    SpanGuard {
        live: Some(LiveSpan {
            name,
            id,
            parent,
            start: Instant::now(),
            depth,
            attrs: Vec::new(),
        }),
    }
}

impl SpanGuard {
    /// Attaches a typed attribute. Values are only formatted when the
    /// span is live — on a disabled guard this is a no-op branch.
    pub fn attr(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if let Some(live) = &mut self.live {
            live.attrs.push((Cow::Borrowed(key), value.to_string()));
        }
        self
    }

    /// The span's process-unique id, or 0 on a disabled guard.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let end = Instant::now();
        let dur = end - live.start;
        // Restore the stack to this span's level; guards are lexically
        // scoped, so truncation also heals any leaked inner guard.
        STACK.with(|s| s.borrow_mut().truncate(live.depth as usize));
        let start_us = live
            .start
            .checked_duration_since(epoch())
            .map_or(0, |d| d.as_micros() as u64);
        Registry::global()
            .histogram(&format!("span.{}.seconds", live.name), DEFAULT_TIME_BOUNDS)
            .observe(dur.as_secs_f64());
        // Mirror into the flight-recorder ring so a crash dump shows the
        // spans that completed just before the trigger.
        crate::flight::FlightRecorder::global().record(crate::flight::FlightEvent {
            seq: 0,
            kind: "span",
            name: live.name.clone(),
            detail: live
                .attrs
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(","),
            tid: thread_id(),
            at_us: start_us,
            dur_us: dur.as_micros() as u64,
        });
        SpanLog::global().record(SpanEvent {
            name: live.name,
            id: live.id,
            parent: live.parent,
            tid: thread_id(),
            start_us,
            dur_us: dur.as_micros() as u64,
            depth: live.depth,
            attrs: live.attrs,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag is process-global, so everything that toggles it
    // lives in this single test to avoid races with the parallel runner.
    #[test]
    fn span_lifecycle() {
        // Disabled: nothing is recorded and no ids are handed out.
        crate::set_enabled(false);
        let before = SpanLog::global().len();
        {
            let g = span("test.disabled").attr("ignored", 1);
            assert_eq!(g.id(), 0);
            assert_eq!(current_id(), 0);
        }
        assert_eq!(SpanLog::global().len(), before);

        // Enabled: nesting, depth, parent links and containment.
        crate::set_enabled(true);
        let marker = "test.nest.outer";
        let cross_parent;
        {
            let _outer = span(marker);
            cross_parent = current_id();
            assert_ne!(cross_parent, 0);
            let _inner = span("test.nest.inner").attr("k", "v");
        }
        // Threads get distinct tids; explicit parents cross threads.
        std::thread::scope(|s| {
            for w in 0..2 {
                s.spawn(move || {
                    let _g = span_with_parent("test.threaded", cross_parent).attr("worker", w);
                });
            }
        });
        crate::set_enabled(false);

        let events = SpanLog::global().snapshot();
        let outer = events
            .iter()
            .find(|e| e.name == marker)
            .expect("outer span recorded");
        let inner = events
            .iter()
            .find(|e| e.name == "test.nest.inner")
            .expect("inner span recorded");
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(inner.tid, outer.tid);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.id, cross_parent);
        assert_eq!(inner.attrs, vec![(Cow::Borrowed("k"), "v".to_string())]);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        let threaded: Vec<&SpanEvent> = events
            .iter()
            .filter(|e| e.name == "test.threaded")
            .collect();
        let tids: std::collections::BTreeSet<u64> = threaded.iter().map(|e| e.tid).collect();
        assert!(tids.len() >= 2, "tids: {tids:?}");
        for ev in &threaded {
            assert_eq!(ev.parent, outer.id, "worker span kept its logical parent");
            assert_eq!(
                ev.depth, 0,
                "worker spans are lexical roots on their thread"
            );
        }
        // Ids are unique across every recorded event.
        let ids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), events.len());
        // The duration also landed in the span histogram.
        let snap = Registry::global().snapshot();
        assert!(snap
            .iter()
            .any(|s| s.name == format!("span.{marker}.seconds")));
    }
}
