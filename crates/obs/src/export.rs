//! Exporters: Prometheus text format, Chrome trace-event JSON, and a
//! JSONL stream.
//!
//! * [`prometheus`] renders a [`Registry`] snapshot as the Prometheus text
//!   exposition format. Metric names are sanitised (`.` → `_`); the
//!   canonical dotted name is preserved in the `# HELP` line.
//! * [`chrome_trace`] renders span events as a Chrome trace-event JSON
//!   document (`ph: "X"` complete events) loadable in `chrome://tracing`
//!   or Perfetto; nesting falls out of per-thread timestamp containment.
//! * [`jsonl`] renders one JSON object per line — spans first, then
//!   metrics — for ad-hoc scripting (`jq`, pandas).
//!
//! The JSON is emitted by hand: this crate is deliberately
//! dependency-free, and the two document shapes are flat enough that a
//! serialisation framework would be the heavier option.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs::{export, Registry};
//!
//! let r = Registry::new();
//! r.counter("simcache.hits").add(7);
//! let text = export::prometheus(&r);
//! assert!(text.contains("simcache_hits 7"));
//! assert!(text.contains("simcache.hits")); // canonical name in HELP
//! ```

use crate::registry::{quantile_from_buckets, MetricValue, Registry};
use crate::span::SpanEvent;
use std::fmt::Write as _;

/// Maps a dotted metric name onto the Prometheus charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes `s` as the body of a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON number. JSON has no Inf/NaN literal, so
/// non-finite values (which no exported metric should produce) become
/// `null` rather than corrupting the document.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders every metric in `registry` in the Prometheus text exposition
/// format. Names are unique: the registry is keyed by name per kind, and
/// histogram series get `_bucket`/`_sum`/`_count` suffixes.
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for sample in registry.snapshot() {
        let name = sanitize(&sample.name);
        match sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# HELP {name} {}", sample.name);
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# HELP {name} {}", sample.name);
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                let _ = writeln!(out, "# HELP {name} {}", sample.name);
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (b, c) in bounds.iter().zip(&buckets) {
                    cumulative += c;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cumulative}");
                }
                cumulative += buckets.last().copied().unwrap_or(0);
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {count}");
                // Pre-computed quantile gauges alongside the raw buckets,
                // for scrapes without server-side histogram_quantile.
                for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                    if let Some(v) = quantile_from_buckets(&bounds, &buckets, q) {
                        let _ = writeln!(out, "# TYPE {name}_{suffix} gauge");
                        let _ = writeln!(out, "{name}_{suffix} {v}");
                    }
                }
            }
        }
    }
    out
}

/// Renders span attributes as a JSON object body (`"k": "v", ...`).
fn attrs_json(ev: &SpanEvent) -> String {
    ev.attrs
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn span_json(ev: &SpanEvent) -> String {
    let cat = ev.name.split('.').next().unwrap_or("span");
    let mut args = format!(
        "\"depth\": {}, \"id\": {}, \"parent\": {}",
        ev.depth, ev.id, ev.parent
    );
    if !ev.attrs.is_empty() {
        let _ = write!(args, ", {}", attrs_json(ev));
    }
    format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
         \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{{args}}}}}",
        json_escape(&ev.name),
        json_escape(cat),
        ev.start_us,
        ev.dur_us,
        ev.tid,
    )
}

/// Renders span events as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&span_json(ev));
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str(
        "  ],\n  \"displayTimeUnit\": \"ms\",\n  \
         \"otherData\": {\"producer\": \"gemstone-obs\"}\n}\n",
    );
    out
}

/// Renders spans and metrics as one JSON object per line.
pub fn jsonl(registry: &Registry, events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = writeln!(
            out,
            "{{\"type\": \"span\", \"name\": \"{}\", \"id\": {}, \"parent\": {}, \
             \"tid\": {}, \"start_us\": {}, \"dur_us\": {}, \"depth\": {}, \
             \"attrs\": {{{}}}}}",
            json_escape(&ev.name),
            ev.id,
            ev.parent,
            ev.tid,
            ev.start_us,
            ev.dur_us,
            ev.depth,
            attrs_json(ev)
        );
    }
    for sample in registry.snapshot() {
        let name = json_escape(&sample.name);
        let _ = match sample.value {
            MetricValue::Counter(v) => {
                writeln!(
                    out,
                    "{{\"type\": \"counter\", \"name\": \"{name}\", \"value\": {v}}}"
                )
            }
            MetricValue::Gauge(v) => writeln!(
                out,
                "{{\"type\": \"gauge\", \"name\": \"{name}\", \"value\": {}}}",
                json_f64(v)
            ),
            MetricValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
            } => {
                let quantile =
                    |q| json_f64(quantile_from_buckets(&bounds, &buckets, q).unwrap_or(f64::NAN));
                let (p50, p95, p99) = (quantile(0.5), quantile(0.95), quantile(0.99));
                let bounds: Vec<String> = bounds.iter().map(|b| json_f64(*b)).collect();
                let buckets: Vec<String> = buckets.iter().map(|c| c.to_string()).collect();
                writeln!(
                    out,
                    "{{\"type\": \"histogram\", \"name\": \"{name}\", \
                     \"bounds\": [{}], \"buckets\": [{}], \"sum\": {}, \"count\": {count}, \
                     \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}",
                    bounds.join(", "),
                    buckets.join(", "),
                    json_f64(sum)
                )
            }
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::borrow::Cow;

    /// Minimal recursive-descent JSON syntax checker, so the exporters can
    /// be validated without pulling a JSON crate into the tree.
    mod json_check {
        pub fn validate(s: &str) -> Result<(), String> {
            let b = s.as_bytes();
            let mut i = 0usize;
            skip_ws(b, &mut i);
            value(b, &mut i)?;
            skip_ws(b, &mut i);
            if i != b.len() {
                return Err(format!("trailing garbage at byte {i}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[u8], i: &mut usize) {
            while matches!(b.get(*i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                *i += 1;
            }
        }

        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            match b.get(*i) {
                Some(b'{') => object(b, i),
                Some(b'[') => array(b, i),
                Some(b'"') => string(b, i),
                Some(b't') => literal(b, i, "true"),
                Some(b'f') => literal(b, i, "false"),
                Some(b'n') => literal(b, i, "null"),
                Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
                other => Err(format!("unexpected {other:?} at byte {i}")),
            }
        }

        fn literal(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
            if b[*i..].starts_with(lit.as_bytes()) {
                *i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {i}"))
            }
        }

        fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
            let start = *i;
            if b.get(*i) == Some(&b'-') {
                *i += 1;
            }
            while matches!(b.get(*i), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            std::str::from_utf8(&b[start..*i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(|_| ())
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // opening quote
            while let Some(&c) = b.get(*i) {
                match c {
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    b'\\' => *i += 2,
                    _ => *i += 1,
                }
            }
            Err("unterminated string".to_string())
        }

        fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // '['
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => {
                        *i += 1;
                        skip_ws(b, i);
                    }
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("bad array at byte {i}: {other:?}")),
                }
            }
        }

        fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
            *i += 1; // '{'
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                if b.get(*i) != Some(&b'"') {
                    return Err(format!("expected key at byte {i}"));
                }
                string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                *i += 1;
                skip_ws(b, i);
                value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => {
                        *i += 1;
                        skip_ws(b, i);
                    }
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("bad object at byte {i}: {other:?}")),
                }
            }
        }
    }

    fn assert_valid_json(text: &str) {
        if let Err(e) = json_check::validate(text) {
            panic!("invalid JSON ({e}):\n{text}");
        }
    }

    /// Every integer following a `"key": ` occurrence, in document order.
    fn nums(text: &str, key: &str) -> Vec<u64> {
        let pat = format!("\"{key}\": ");
        text.match_indices(pat.as_str())
            .map(|(idx, m)| {
                let digits: String = text[idx + m.len()..]
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                digits.parse().expect("integer after key")
            })
            .collect()
    }

    fn demo_registry() -> Registry {
        let r = Registry::new();
        r.counter("simcache.hits").add(42);
        r.counter("trace_cache.misses").add(3);
        r.gauge("trace_cache.bytes").set(1024.0);
        let h = r.histogram("span.experiment.seconds", &[0.01, 1.0]);
        h.observe(0.005);
        h.observe(0.5);
        h.observe(5.0);
        r
    }

    fn demo_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                name: Cow::Borrowed("pipeline.run"),
                id: 1,
                parent: 0,
                tid: 1,
                start_us: 0,
                dur_us: 1_000,
                depth: 0,
                attrs: Vec::new(),
            },
            SpanEvent {
                name: Cow::Borrowed("stage.experiment"),
                id: 2,
                parent: 1,
                tid: 1,
                start_us: 100,
                dur_us: 500,
                depth: 1,
                attrs: vec![(Cow::Borrowed("workload"), "mi-fft".to_string())],
            },
        ]
    }

    #[test]
    fn prometheus_lines_are_parseable_and_unique() {
        let text = prometheus(&demo_registry());
        let mut seen = std::collections::BTreeSet::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().expect("metric name");
            let value = parts.next().expect("metric value");
            assert_eq!(parts.next(), None, "extra tokens on {line:?}");
            assert!(value.parse::<f64>().is_ok(), "unparseable value {line:?}");
            assert!(seen.insert(name.to_string()), "duplicate name {name}");
        }
        assert!(text.contains("simcache_hits 42"));
        assert!(text.contains("# HELP simcache_hits simcache.hits"));
        assert!(text.contains("trace_cache_misses 3"));
        // Histogram buckets are cumulative and end at the total count.
        assert!(text.contains("span_experiment_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("span_experiment_seconds_count 3"));
        // Quantile gauges ride alongside the raw buckets.
        assert!(text.contains("span_experiment_seconds_p50 "));
        assert!(text.contains("span_experiment_seconds_p95 "));
        assert!(text.contains("span_experiment_seconds_p99 "));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_nested_spans() {
        let text = chrome_trace(&demo_events());
        assert_valid_json(&text);
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\": \"pipeline.run\""));
        assert!(text.contains("\"name\": \"stage.experiment\""));
        assert_eq!(text.matches("\"ph\": \"X\"").count(), 2);
        // Containment on the same tid — what chrome://tracing nests by.
        let ts = nums(&text, "ts");
        let dur = nums(&text, "dur");
        let tid = nums(&text, "tid");
        assert_eq!(tid[0], tid[1]);
        assert!(
            ts[0] <= ts[1] && ts[1] + dur[1] <= ts[0] + dur[0],
            "inner not contained"
        );
        assert_eq!(nums(&text, "depth"), vec![0, 1]);
        // Parent links and attributes ride in args.
        assert_eq!(nums(&text, "id"), vec![1, 2]);
        assert_eq!(nums(&text, "parent"), vec![0, 1]);
        assert!(text.contains("\"workload\": \"mi-fft\""));
        // Empty logs still produce a loadable document.
        assert_valid_json(&chrome_trace(&[]));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = jsonl(&demo_registry(), &demo_events());
        let mut spans = 0;
        let mut metrics = 0;
        for line in text.lines() {
            assert_valid_json(line);
            if line.contains("\"type\": \"span\"") {
                spans += 1;
            } else {
                assert!(
                    line.contains("\"type\": \"counter\"")
                        || line.contains("\"type\": \"gauge\"")
                        || line.contains("\"type\": \"histogram\""),
                    "unexpected record {line:?}"
                );
                metrics += 1;
            }
        }
        assert_eq!(spans, 2);
        assert_eq!(metrics, 4);
        // Span lines carry ids, parents and attrs; histogram lines carry
        // pre-computed quantiles.
        assert!(text.contains("\"parent\": 1"));
        assert!(text.contains("\"attrs\": {\"workload\": \"mi-fft\"}"));
        assert!(text.contains("\"p50\": "));
        assert!(text.contains("\"p95\": "));
        assert!(text.contains("\"p99\": "));
    }

    #[test]
    fn json_escaping_round_trips_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
