//! A minimal JSON value parser — just enough to re-ingest the documents
//! this crate's own exporters emit (JSONL journals, flight-recorder
//! dumps) and the `BENCH_*.json` records, without pulling a
//! serialisation framework into a deliberately dependency-free crate.
//!
//! Full JSON values are supported (objects, arrays, strings with escape
//! sequences including `\uXXXX`, numbers, booleans, `null`); numbers are
//! parsed as `f64`, which is lossless for every magnitude the journals
//! contain. Object keys keep insertion order irrelevant — lookup is by
//! linear scan, fine for the dozen-key objects involved.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs::json::Value;
//!
//! let v = Value::parse(r#"{"name": "engine.run", "dur_us": 1500}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Value::as_str), Some("engine.run"));
//! assert_eq!(v.get("dur_us").and_then(Value::as_u64), Some(1500));
//! ```

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as parsed key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while matches!(self.b.get(self.i),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.i))?;
                            // Surrogate pairs are not emitted by our own
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Copy the run of plain bytes up to the next quote or
                    // escape in one go.
                    let start = self.i;
                    while matches!(self.b.get(self.i), Some(c) if *c != b'"' && *c != b'\\') {
                        self.i += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    out.push_str(chunk);
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.i += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                other => return Err(format!("bad array at byte {}: {other:?}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.i += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Value::Object(members));
        }
        loop {
            if self.b.get(self.i) != Some(&b'"') {
                return Err(format!("expected key at byte {}", self.i));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.i));
            }
            self.i += 1;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(members));
                }
                other => return Err(format!("bad object at byte {}: {other:?}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = Value::parse(
            r#"{"a": 1, "b": -2.5e2, "c": "x\ny", "d": [true, false, null], "e": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_f64), Some(-250.0));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(
            v.get("d").and_then(Value::as_array).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(v.get("e"), Some(&Value::Object(vec![])));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = Value::parse(r#""tab	end é""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\tend é"));
    }

    #[test]
    fn round_trips_own_exporter_output() {
        use crate::span::SpanEvent;
        use std::borrow::Cow;
        let r = crate::Registry::new();
        r.counter("demo.hits").add(3);
        r.histogram("demo.lat", &[0.5, 1.0]).observe(0.7);
        let events = vec![SpanEvent {
            name: Cow::Borrowed("demo.span"),
            id: 4,
            parent: 2,
            tid: 1,
            start_us: 10,
            dur_us: 90,
            depth: 1,
            attrs: vec![(Cow::Borrowed("workload"), "mi-\"quoted\"".to_string())],
        }];
        for line in crate::export::jsonl(&r, &events).lines() {
            let v = Value::parse(line).expect("exporter emits valid JSON");
            assert!(v.get("type").is_some());
        }
        let trace = crate::export::chrome_trace(&events);
        assert!(Value::parse(&trace).is_ok());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2"] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
