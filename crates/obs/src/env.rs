//! The shared `GEMSTONE_*` environment-variable parser.
//!
//! Every knob in the tree (`GEMSTONE_THREADS`, `GEMSTONE_TRACE_BYTES`, …)
//! resolves through [`parse_checked`], so a malformed value is never
//! silently ignored: the first time a variable fails to parse (or fails
//! its validity check) a warning naming the variable, the rejected value
//! and the fallback is printed to stderr — once per variable per process.
//!
//! # Examples
//!
//! ```
//! std::env::set_var("GEMSTONE_DOC_DEMO", "not-a-number");
//! let v = gemstone_obs::env::parse_checked::<usize>(
//!     "GEMSTONE_DOC_DEMO",
//!     "a positive integer",
//!     "the default of 4",
//!     |&n| n > 0,
//! );
//! assert_eq!(v, None); // and a one-time warning went to stderr
//! ```

use std::collections::BTreeSet;
use std::str::FromStr;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Poison-tolerant lock: the guarded state is append-only bookkeeping.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn warning_log() -> &'static Mutex<Vec<String>> {
    static LOG: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

fn warn_once(name: &str, raw: &str, requirement: &str, fallback: &str) {
    if !lock(warned()).insert(name.to_string()) {
        return;
    }
    let msg = format!("warning: {name}={raw:?} is not {requirement}; falling back to {fallback}");
    eprintln!("{msg}");
    lock(warning_log()).push(msg);
}

/// Every environment warning emitted so far (for tests and reports).
pub fn warnings() -> Vec<String> {
    lock(warning_log()).clone()
}

/// Reads and parses `name`. Returns `None` when the variable is unset, and
/// also when it is set but unparseable or fails `valid` — in which case a
/// one-time stderr warning names the variable, the offending value, the
/// `requirement` it missed and the `fallback` the caller will use.
pub fn parse_checked<T: FromStr>(
    name: &str,
    requirement: &str,
    fallback: &str,
    valid: impl Fn(&T) -> bool,
) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<T>() {
        Ok(v) if valid(&v) => Some(v),
        _ => {
            warn_once(name, &raw, requirement, fallback);
            None
        }
    }
}

/// [`parse_checked`] without an extra validity predicate.
pub fn parse<T: FromStr>(name: &str, requirement: &str, fallback: &str) -> Option<T> {
    parse_checked(name, requirement, fallback, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_silent() {
        assert_eq!(
            parse::<usize>("GEMSTONE_TEST_UNSET_VAR", "an integer", "7"),
            None
        );
        assert!(!warnings()
            .iter()
            .any(|w| w.contains("GEMSTONE_TEST_UNSET_VAR")));
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("GEMSTONE_TEST_VALID", " 42 ");
        assert_eq!(
            parse_checked::<usize>("GEMSTONE_TEST_VALID", "an integer", "0", |&n| n > 0),
            Some(42)
        );
    }

    #[test]
    fn invalid_value_warns_exactly_once() {
        std::env::set_var("GEMSTONE_TEST_BAD", "zebra");
        for _ in 0..3 {
            assert_eq!(
                parse::<usize>("GEMSTONE_TEST_BAD", "a byte count", "512 MiB"),
                None
            );
        }
        let hits: Vec<String> = warnings()
            .into_iter()
            .filter(|w| w.contains("GEMSTONE_TEST_BAD"))
            .collect();
        assert_eq!(hits.len(), 1, "one warning per variable: {hits:?}");
        assert!(hits[0].contains("zebra"));
        assert!(hits[0].contains("512 MiB"));
    }

    #[test]
    fn failed_validation_warns() {
        std::env::set_var("GEMSTONE_TEST_ZERO", "0");
        assert_eq!(
            parse_checked::<usize>(
                "GEMSTONE_TEST_ZERO",
                "a positive integer",
                "available parallelism",
                |&n| n > 0
            ),
            None
        );
        assert!(warnings().iter().any(|w| w.contains("GEMSTONE_TEST_ZERO")));
    }
}
