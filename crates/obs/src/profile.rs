//! Aggregated self-profiles from the span log: rebuilds the span tree
//! from parent links, attributes inclusive/self time per logical path,
//! walks the critical path, and re-ingests JSONL journals so two runs
//! can be diffed — the engine behind `gemstone perf`.
//!
//! The span log is flat (completion-ordered [`SpanEvent`]s); structure
//! comes from the `parent` ids recorded when each span opened, which
//! survive thread hand-offs (see [`crate::span::span_with_parent`]). A
//! span whose parent never reached the log (still open, or the log was
//! cleared) is promoted to a root rather than dropped.
//!
//! Self time is inclusive time minus the inclusive time of children.
//! Children that ran *concurrently* (segment or sweep workers) can sum
//! to more than their parent's wall clock; self time clamps at zero in
//! that case — the parent genuinely had no exclusive time.
//!
//! # Examples
//!
//! ```
//! use gemstone_obs as obs;
//!
//! obs::set_enabled(true);
//! obs::span::SpanLog::global().clear();
//! {
//!     let _sweep = obs::span::span("doc.sweep");
//!     let _wl = obs::span::span("doc.workload").attr("workload", "fft");
//! }
//! let events = obs::span::SpanLog::global().snapshot();
//! let tree = obs::profile::SpanTree::build(&events);
//! let agg = tree.aggregate();
//! assert!(agg.iter().any(|a| a.path == "doc.sweep/doc.workload"));
//! obs::set_enabled(false);
//! ```

use crate::json::Value;
use crate::span::SpanEvent;
use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One node of a rebuilt span tree (indices into [`SpanTree::nodes`]).
#[derive(Debug)]
pub struct SpanNode {
    /// The completed span.
    pub event: SpanEvent,
    /// Child node indices, ordered by start time.
    pub children: Vec<usize>,
    /// Exclusive time: inclusive minus children, clamped at zero.
    pub self_us: u64,
}

/// A span tree rebuilt from parent links.
#[derive(Debug, Default)]
pub struct SpanTree {
    /// Every node; tree edges are indices.
    pub nodes: Vec<SpanNode>,
    /// Indices of root nodes (parent 0 or unknown), ordered by start.
    pub roots: Vec<usize>,
}

/// Aggregated timing for one logical path (root→span names joined with
/// `/`), summed over every occurrence.
#[derive(Debug, Clone)]
pub struct PathStats {
    /// `/`-joined span names from the root.
    pub path: String,
    /// The leaf span name.
    pub name: String,
    /// Nesting depth in the logical tree (0 = root).
    pub depth: usize,
    /// Number of spans aggregated into this path.
    pub count: u64,
    /// Total inclusive time.
    pub incl_us: u64,
    /// Total exclusive (self) time.
    pub self_us: u64,
}

impl SpanTree {
    /// Rebuilds the tree from a flat event log.
    pub fn build(events: &[SpanEvent]) -> SpanTree {
        let index: BTreeMap<u64, usize> =
            events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
        let mut nodes: Vec<SpanNode> = events
            .iter()
            .map(|e| SpanNode {
                event: e.clone(),
                children: Vec::new(),
                self_us: e.dur_us,
            })
            .collect();
        let mut roots = Vec::new();
        for (i, e) in events.iter().enumerate() {
            match index.get(&e.parent) {
                Some(&p) if e.parent != 0 && p != i => {
                    nodes[p].children.push(i);
                    nodes[p].self_us = nodes[p].self_us.saturating_sub(e.dur_us);
                }
                _ => roots.push(i),
            }
        }
        let by_start = |nodes: &[SpanNode], ids: &mut Vec<usize>| {
            ids.sort_by_key(|&i| (nodes[i].event.start_us, nodes[i].event.id));
        };
        by_start(&nodes, &mut roots);
        for i in 0..nodes.len() {
            let mut children = std::mem::take(&mut nodes[i].children);
            by_start(&nodes, &mut children);
            nodes[i].children = children;
        }
        SpanTree { nodes, roots }
    }

    /// Aggregates inclusive/self time per logical path, depth-first.
    pub fn aggregate(&self) -> Vec<PathStats> {
        let mut order: Vec<String> = Vec::new();
        let mut stats: BTreeMap<String, PathStats> = BTreeMap::new();
        let mut stack: Vec<(usize, String, usize)> = self
            .roots
            .iter()
            .rev()
            .map(|&i| (i, String::new(), 0))
            .collect();
        while let Some((i, prefix, depth)) = stack.pop() {
            let node = &self.nodes[i];
            let path = if prefix.is_empty() {
                node.event.name.to_string()
            } else {
                format!("{prefix}/{}", node.event.name)
            };
            let entry = stats.entry(path.clone()).or_insert_with(|| {
                order.push(path.clone());
                PathStats {
                    path: path.clone(),
                    name: node.event.name.to_string(),
                    depth,
                    count: 0,
                    incl_us: 0,
                    self_us: 0,
                }
            });
            entry.count += 1;
            entry.incl_us += node.event.dur_us;
            entry.self_us += node.self_us;
            for &c in node.children.iter().rev() {
                stack.push((c, path.clone(), depth + 1));
            }
        }
        order
            .into_iter()
            .map(|p| stats.remove(&p).unwrap())
            .collect()
    }

    /// The critical path: from the longest root, repeatedly descend into
    /// the child with the largest inclusive time. Returns node indices.
    pub fn critical_path(&self) -> Vec<usize> {
        let mut path = Vec::new();
        let Some(&root) = self
            .roots
            .iter()
            .max_by_key(|&&i| self.nodes[i].event.dur_us)
        else {
            return path;
        };
        let mut cur = root;
        loop {
            path.push(cur);
            match self.nodes[cur]
                .children
                .iter()
                .max_by_key(|&&c| self.nodes[c].event.dur_us)
            {
                Some(&next) => cur = next,
                None => return path,
            }
        }
    }

    /// The set of logical name paths, with spans named in `transparent`
    /// skipped (their children re-attach to the nearest kept ancestor).
    /// Worker multiplicity collapses — the *shape* of two runs of the
    /// same work compares equal even when worker counts differ.
    pub fn name_paths(&self, transparent: &[&str]) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<(usize, String)> =
            self.roots.iter().map(|&i| (i, String::new())).collect();
        while let Some((i, prefix)) = stack.pop() {
            let node = &self.nodes[i];
            let name = node.event.name.as_ref();
            let path = if transparent.contains(&name) {
                prefix
            } else {
                let path = if prefix.is_empty() {
                    name.to_string()
                } else {
                    format!("{prefix}/{name}")
                };
                out.insert(path.clone());
                path
            };
            for &c in &node.children {
                stack.push((c, path.clone()));
            }
        }
        out
    }

    /// Wall-clock covered by the log: latest end minus earliest start.
    pub fn wall_us(&self) -> u64 {
        let start = self.nodes.iter().map(|n| n.event.start_us).min();
        let end = self
            .nodes
            .iter()
            .map(|n| n.event.start_us + n.event.dur_us)
            .max();
        match (start, end) {
            (Some(s), Some(e)) => e.saturating_sub(s),
            _ => 0,
        }
    }
}

/// A re-ingested JSONL journal: spans plus the metric samples that were
/// exported with them.
#[derive(Debug, Default)]
pub struct Journal {
    /// Completed spans, in file order.
    pub events: Vec<SpanEvent>,
    /// Counter samples by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name: (count, sum, p50, p95, p99).
    pub histograms: BTreeMap<String, (u64, f64, f64, f64, f64)>,
}

impl Journal {
    /// Parses a JSONL journal produced by [`crate::export::jsonl`] (or a
    /// flight-recorder dump; unknown record types are skipped). Fails on
    /// lines that are not valid JSON objects.
    pub fn parse(text: &str) -> Result<Journal, String> {
        let mut journal = Journal::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Value::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = v.get("type").and_then(Value::as_str).unwrap_or("");
            let name = v
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            let num = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
            match kind {
                "span" => {
                    let attrs = v
                        .get("attrs")
                        .and_then(Value::as_object)
                        .map(|members| {
                            members
                                .iter()
                                .filter_map(|(k, val)| {
                                    val.as_str().map(|s| (Cow::Owned(k.clone()), s.to_string()))
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    journal.events.push(SpanEvent {
                        name: Cow::Owned(name),
                        id: num("id"),
                        parent: num("parent"),
                        tid: num("tid"),
                        start_us: num("start_us"),
                        dur_us: num("dur_us"),
                        depth: num("depth") as u32,
                        attrs,
                    });
                }
                "counter" => {
                    journal.counters.insert(name, num("value"));
                }
                "gauge" => {
                    let val = v.get("value").and_then(Value::as_f64).unwrap_or(0.0);
                    journal.gauges.insert(name, val);
                }
                "histogram" => {
                    let f = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN);
                    journal
                        .histograms
                        .insert(name, (num("count"), f("sum"), f("p50"), f("p95"), f("p99")));
                }
                _ => {}
            }
        }
        Ok(journal)
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1e3
}

/// Renders the human-readable profile report for `gemstone perf report`:
/// the aggregated span tree, the top spans by self time, per-tier and
/// per-stage breakdowns, throughput, and the critical path.
pub fn render_report(journal: &Journal) -> String {
    let tree = SpanTree::build(&journal.events);
    let agg = tree.aggregate();
    let wall_us = tree.wall_us();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight profile: {} spans over {:.3} s wall",
        journal.events.len(),
        wall_us as f64 / 1e6
    );

    let _ = writeln!(out, "\n== span tree (inclusive / self, count) ==");
    for row in &agg {
        let _ = writeln!(
            out,
            "{:<58} {:>12.3} ms {:>12.3} ms {:>7}x",
            format!("{}{}", "  ".repeat(row.depth), row.name),
            ms(row.incl_us),
            ms(row.self_us),
            row.count
        );
    }

    let _ = writeln!(out, "\n== top spans by self time ==");
    let mut by_self: Vec<&PathStats> = agg.iter().collect();
    by_self.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.path.cmp(&b.path)));
    for row in by_self.iter().take(10) {
        let _ = writeln!(
            out,
            "{:<58} {:>12.3} ms {:>7}x",
            row.path,
            ms(row.self_us),
            row.count
        );
    }

    // Tier/stage breakdown: aggregate by leaf span name over the tier
    // spans (engine.run*) and pipeline stages (stage.*).
    let mut groups: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for row in &agg {
        if row.name.starts_with("engine.run") || row.name.starts_with("stage.") {
            let g = groups.entry(row.name.as_str()).or_default();
            g.0 += row.incl_us;
            g.1 += row.count;
        }
    }
    if !groups.is_empty() {
        let _ = writeln!(out, "\n== per-tier / per-stage inclusive time ==");
        for (name, (incl, count)) in groups {
            let _ = writeln!(out, "{:<58} {:>12.3} ms {:>7}x", name, ms(incl), count);
        }
    }

    if let Some(&instructions) = journal.counters.get("engine.instructions") {
        let mips = if wall_us > 0 {
            instructions as f64 / wall_us as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "\n== throughput ==\n{instructions} instructions committed, {mips:.1} MIPS aggregate"
        );
    }

    let critical = tree.critical_path();
    if !critical.is_empty() {
        let _ = writeln!(out, "\n== critical path ==");
        let names: Vec<String> = critical
            .iter()
            .map(|&i| {
                let e = &tree.nodes[i].event;
                let attrs: Vec<String> = e.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                if attrs.is_empty() {
                    format!("{} ({:.3} ms)", e.name, ms(e.dur_us))
                } else {
                    format!("{} [{}] ({:.3} ms)", e.name, attrs.join(","), ms(e.dur_us))
                }
            })
            .collect();
        let _ = writeln!(out, "{}", names.join("\n  -> "));
    }
    out
}

/// One machine-readable bench record (mirrors
/// `gemstone_bench::BenchRecord`, re-parsed from `BENCH_*.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRec {
    /// Bench name (`segmented_replay`, `grid_sweep`, …).
    pub bench: String,
    /// Configuration within the bench (`a15/approx`, `4w`, …).
    pub config: String,
    /// Wall-clock seconds of the measured pass.
    pub wall_s: f64,
    /// Speedup over the bench's own baseline (machine-robust ratio).
    pub speedup: f64,
}

/// Parses a `BENCH_*.json` array written by
/// `gemstone_bench::write_bench_json`.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchRec>, String> {
    let v = Value::parse(text)?;
    let items = v.as_array().ok_or("expected a top-level JSON array")?;
    items
        .iter()
        .enumerate()
        .map(|(i, rec)| {
            let field = |key: &str| {
                rec.get(key)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or(format!("record {i}: missing \"{key}\""))
            };
            let num = |key: &str| {
                rec.get(key)
                    .and_then(Value::as_f64)
                    .ok_or(format!("record {i}: missing \"{key}\""))
            };
            Ok(BenchRec {
                bench: field("bench")?,
                config: field("config")?,
                wall_s: num("wall_s")?,
                speedup: num("speedup")?,
            })
        })
        .collect()
}

/// One compared metric in a [`DiffReport`].
#[derive(Debug, Clone)]
pub struct DiffLine {
    /// What was compared (bench/config, span path, counter name).
    pub name: String,
    /// Baseline value.
    pub before: f64,
    /// Candidate value.
    pub after: f64,
    /// Signed relative change in percent ((after-before)/before).
    pub delta_pct: f64,
    /// Whether the change exceeds tolerance in the *bad* direction.
    pub regression: bool,
}

/// The result of diffing two bench-record sets or journals.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Per-metric comparisons, worst regression first.
    pub lines: Vec<DiffLine>,
    /// Metrics present on only one side (matched by name).
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// Number of lines flagged as regressions.
    pub fn regressions(&self) -> usize {
        self.lines.iter().filter(|l| l.regression).count()
    }

    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<52} {:>12} {:>12} {:>9}",
            "metric", "before", "after", "delta"
        );
        for line in &self.lines {
            let _ = writeln!(
                out,
                "{:<52} {:>12.4} {:>12.4} {:>+8.1}%{}",
                line.name,
                line.before,
                line.after,
                line.delta_pct,
                if line.regression { "  REGRESSION" } else { "" }
            );
        }
        for name in &self.unmatched {
            let _ = writeln!(out, "{name:<52} (present on one side only)");
        }
        out
    }
}

fn push_diff(
    report: &mut DiffReport,
    name: String,
    before: f64,
    after: f64,
    tolerance_pct: f64,
    higher_is_better: bool,
) {
    if !before.is_finite() || !after.is_finite() || before == 0.0 {
        return;
    }
    let delta_pct = (after - before) / before * 100.0;
    let bad = if higher_is_better {
        -delta_pct
    } else {
        delta_pct
    };
    report.lines.push(DiffLine {
        name,
        before,
        after,
        delta_pct,
        regression: bad > tolerance_pct,
    });
}

fn sort_worst_first(report: &mut DiffReport) {
    report.lines.sort_by(|a, b| {
        b.regression
            .cmp(&a.regression)
            .then(b.delta_pct.abs().total_cmp(&a.delta_pct.abs()))
            .then(a.name.cmp(&b.name))
    });
}

/// Diffs two bench-record sets, matched by `(bench, config)`. The
/// compared metric is `speedup` — a within-machine ratio, so committed
/// baselines stay meaningful across runner hardware; a drop of more
/// than `tolerance_pct` percent is a regression.
pub fn diff_bench(before: &[BenchRec], after: &[BenchRec], tolerance_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let key = |r: &BenchRec| format!("{}/{}", r.bench, r.config);
    let after_map: BTreeMap<String, &BenchRec> = after.iter().map(|r| (key(r), r)).collect();
    let mut matched = BTreeSet::new();
    for b in before {
        let k = key(b);
        match after_map.get(&k) {
            Some(a) => {
                matched.insert(k.clone());
                push_diff(&mut report, k, b.speedup, a.speedup, tolerance_pct, true);
            }
            None => report.unmatched.push(format!("{k} (baseline only)")),
        }
    }
    for (k, _) in after_map {
        if !matched.contains(&k) {
            report.unmatched.push(format!("{k} (candidate only)"));
        }
    }
    sort_worst_first(&mut report);
    report
}

/// Diffs two journals: aggregate MIPS (higher is better) plus total
/// inclusive time per span name (lower is better). Span paths present on
/// only one side are reported but not failed — tree shape can legally
/// change between versions.
pub fn diff_journals(before: &Journal, after: &Journal, tolerance_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let totals = |j: &Journal| -> BTreeMap<String, u64> {
        let mut m: BTreeMap<String, u64> = BTreeMap::new();
        for e in &j.events {
            *m.entry(e.name.to_string()).or_default() += e.dur_us;
        }
        m
    };
    let (tb, ta) = (totals(before), totals(after));
    for (name, &b_us) in &tb {
        match ta.get(name) {
            Some(&a_us) => push_diff(
                &mut report,
                format!("span:{name} (ms)"),
                ms(b_us),
                ms(a_us),
                tolerance_pct,
                false,
            ),
            None => report
                .unmatched
                .push(format!("span:{name} (baseline only)")),
        }
    }
    for name in ta.keys() {
        if !tb.contains_key(name) {
            report
                .unmatched
                .push(format!("span:{name} (candidate only)"));
        }
    }
    let mips = |j: &Journal| -> Option<f64> {
        let instr = *j.counters.get("engine.instructions")? as f64;
        let wall = SpanTree::build(&j.events).wall_us();
        (wall > 0).then(|| instr / wall as f64)
    };
    if let (Some(b), Some(a)) = (mips(before), mips(after)) {
        push_diff(&mut report, "mips".to_string(), b, a, tolerance_pct, true);
    }
    sort_worst_first(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, id: u64, parent: u64, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name: Cow::Owned(name.to_string()),
            id,
            parent,
            tid: 1,
            start_us: start,
            dur_us: dur,
            depth: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn tree_attributes_cross_thread_children() {
        // sweep(1000) -> workload(900) -> {worker(400), worker(450)}
        let events = vec![
            ev("worker", 3, 2, 150, 400),
            ev("worker", 4, 2, 150, 450),
            ev("workload", 2, 1, 100, 900),
            ev("sweep", 1, 0, 0, 1000),
        ];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots.len(), 1);
        let agg = tree.aggregate();
        let paths: Vec<&str> = agg.iter().map(|a| a.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["sweep", "sweep/workload", "sweep/workload/worker"]
        );
        let worker = &agg[2];
        assert_eq!(worker.count, 2);
        assert_eq!(worker.incl_us, 850);
        let workload = &agg[1];
        assert_eq!(workload.self_us, 50, "900 - 850 concurrent child time");
        // Critical path descends into the longer worker.
        let critical = tree.critical_path();
        let names: Vec<&str> = critical
            .iter()
            .map(|&i| tree.nodes[i].event.name.as_ref())
            .collect();
        assert_eq!(names, vec!["sweep", "workload", "worker"]);
        assert_eq!(tree.nodes[critical[2]].event.dur_us, 450);
        assert_eq!(tree.wall_us(), 1000);
    }

    #[test]
    fn concurrent_children_clamp_self_time() {
        let events = vec![
            ev("p", 1, 0, 0, 100),
            ev("a", 2, 1, 0, 80),
            ev("b", 3, 1, 0, 80),
        ];
        let tree = SpanTree::build(&events);
        let agg = tree.aggregate();
        assert_eq!(agg.iter().find(|a| a.name == "p").unwrap().self_us, 0);
    }

    #[test]
    fn orphans_become_roots() {
        let events = vec![ev("lost", 5, 999, 0, 10)];
        let tree = SpanTree::build(&events);
        assert_eq!(tree.roots, vec![0]);
    }

    #[test]
    fn name_paths_collapse_transparent_spans() {
        let direct = vec![ev("run", 1, 0, 0, 100), ev("tier", 2, 1, 0, 90)];
        let segmented = vec![
            ev("run", 1, 0, 0, 100),
            ev("seg", 2, 1, 0, 95),
            ev("worker", 3, 2, 0, 40),
            ev("tier", 4, 3, 0, 35),
            ev("worker", 5, 2, 40, 40),
            ev("tier", 6, 5, 40, 35),
        ];
        let a = SpanTree::build(&direct).name_paths(&[]);
        let b = SpanTree::build(&segmented).name_paths(&["seg", "worker"]);
        assert_eq!(a, b);
    }

    #[test]
    fn journal_round_trip() {
        let r = crate::Registry::new();
        r.counter("engine.instructions").add(2_000_000);
        r.gauge("tokenpool.permits.held").set(3.0);
        r.histogram("sim.latency.seconds", &[0.001, 0.01])
            .observe(0.005);
        let events = vec![
            ev("engine.run", 7, 0, 0, 1_000_000),
            SpanEvent {
                attrs: vec![(Cow::Borrowed("workload"), "fft".to_string())],
                ..ev("engine.run.segmented", 8, 7, 10, 900_000)
            },
        ];
        let text = crate::export::jsonl(&r, &events);
        let journal = Journal::parse(&text).unwrap();
        assert_eq!(journal.events.len(), 2);
        assert_eq!(journal.events[1].parent, 7);
        assert_eq!(journal.events[1].attrs[0].1, "fft");
        assert_eq!(journal.counters["engine.instructions"], 2_000_000);
        assert!((journal.gauges["tokenpool.permits.held"] - 3.0).abs() < 1e-12);
        let (count, _sum, p50, _, _) = journal.histograms["sim.latency.seconds"];
        assert_eq!(count, 1);
        assert!(p50 > 0.0);
        let report = render_report(&journal);
        assert!(report.contains("engine.run"), "{report}");
        assert!(report.contains("MIPS"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("workload=fft"), "{report}");
    }

    #[test]
    fn bench_diff_flags_injected_regression() {
        let base = vec![
            BenchRec {
                bench: "segmented_replay".into(),
                config: "4w".into(),
                wall_s: 1.0,
                speedup: 3.0,
            },
            BenchRec {
                bench: "grid_sweep".into(),
                config: "a15/approx".into(),
                wall_s: 0.5,
                speedup: 4.0,
            },
        ];
        let mut cand = base.clone();
        let report = diff_bench(&base, &cand, 20.0);
        assert_eq!(report.regressions(), 0);
        // An injected 30% speedup drop trips the 20% gate.
        cand[0].speedup = 2.0;
        let report = diff_bench(&base, &cand, 20.0);
        assert_eq!(report.regressions(), 1);
        assert!(report.render().contains("REGRESSION"));
        assert!(report.lines[0].name.contains("segmented_replay/4w"));
        // ...but passes a loose enough tolerance.
        assert_eq!(diff_bench(&base, &cand, 50.0).regressions(), 0);
        // Unmatched configs are reported, not failed.
        cand.pop();
        let report = diff_bench(&base, &cand, 20.0);
        assert!(report.unmatched.iter().any(|u| u.contains("baseline only")));
    }

    #[test]
    fn journal_diff_flags_slowdown_and_mips_drop() {
        let mk = |dur: u64, instr: u64| {
            let mut j = Journal {
                events: vec![ev("engine.run", 1, 0, 0, dur)],
                ..Journal::default()
            };
            j.counters.insert("engine.instructions".into(), instr);
            j
        };
        let base = mk(1_000_000, 10_000_000);
        let same = mk(1_050_000, 10_000_000);
        assert_eq!(diff_journals(&base, &same, 20.0).regressions(), 0);
        let slow = mk(1_500_000, 10_000_000);
        let report = diff_journals(&base, &slow, 20.0);
        assert!(report.regressions() >= 2, "{}", report.render()); // span time + MIPS
    }

    #[test]
    fn bench_json_parses_writer_format() {
        let text = r#"[
  {"bench": "grid_sweep", "config": "a7/atomic", "wall_s": 0.012345, "speedup": 3.1}
]"#;
        let recs = parse_bench_json(text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].bench, "grid_sweep");
        assert!((recs[0].speedup - 3.1).abs() < 1e-12);
        assert!(parse_bench_json("{}").is_err());
    }
}
