//! The flight recorder: a bounded ring of the most recent span and note
//! events, kept cheaply at runtime and dumped when something goes wrong
//! (fault-injection retry exhaustion, workload quarantine, a panic) or
//! on demand (`gemstone ... --flight-record FILE`).
//!
//! The ring is lock-free on the hot path in the way that matters: a
//! writer claims a slot with one `fetch_add` and then takes that slot's
//! *own* mutex, which is uncontended unless the ring has wrapped all the
//! way around to a concurrent writer — recording never blocks on other
//! recorders in practice and never allocates beyond the event itself.
//! Readers ([`FlightRecorder::dump`]) lock slots one at a time, so a
//! dump taken mid-flight is a consistent set of whole events.
//!
//! Two kinds of event land in the ring:
//!
//! * **spans** — mirrored automatically by the span layer when tracing
//!   is enabled, so a dump shows what the process was doing just before
//!   the trigger;
//! * **notes** — explicit breadcrumbs from the fault/retry/quarantine
//!   machinery ([`note`]), recorded *regardless* of the tracing flag:
//!   like counters, they fire a handful of times per simulation at most.
//!
//! Capacity comes from `GEMSTONE_FLIGHT_CAP` (default 4096 events).
//!
//! # Examples
//!
//! ```
//! use gemstone_obs::flight;
//!
//! flight::note("doc.retry", "attempt 2 after transient fault");
//! let dump = flight::FlightRecorder::global().dump_jsonl();
//! assert!(dump.contains("doc.retry"));
//! ```

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable sizing the flight-recorder ring (events).
pub const FLIGHT_CAP_ENV: &str = "GEMSTONE_FLIGHT_CAP";

/// Default ring capacity, in events.
pub const DEFAULT_FLIGHT_CAP: usize = 4096;

/// One flight-recorder entry.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Global sequence number (monotonic across wraps; dump order).
    pub seq: u64,
    /// `"span"` or `"note"`.
    pub kind: &'static str,
    /// Event name (span name, or a dotted note topic).
    pub name: Cow<'static, str>,
    /// Free-form detail (span attrs rendered `k=v`, note body).
    pub detail: String,
    /// Recording thread (same ids as [`crate::span::SpanEvent::tid`]).
    pub tid: u64,
    /// Microseconds since the trace epoch.
    pub at_us: u64,
    /// Duration for spans, 0 for notes.
    pub dur_us: u64,
}

/// A bounded ring of recent [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<FlightEvent>>]>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder with `capacity` slots (min 16).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// The process-wide recorder, sized by `GEMSTONE_FLIGHT_CAP`.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cap = crate::env::parse_checked::<usize>(
                FLIGHT_CAP_ENV,
                "a positive event count",
                "the default of 4096",
                |&n| n > 0,
            )
            .unwrap_or(DEFAULT_FLIGHT_CAP);
            FlightRecorder::with_capacity(cap)
        })
    }

    /// Records one event: one `fetch_add` to claim a slot, then a write
    /// under that slot's own (uncontended) mutex.
    pub fn record(&self, mut ev: FlightEvent) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        ev.seq = seq;
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(ev);
    }

    /// Number of events recorded over the recorder's lifetime (not the
    /// number retained, which is bounded by capacity).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The retained events, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Renders the retained events as JSONL, one event per line (the
    /// same `type`/`name` framing as [`crate::export::jsonl`], so
    /// [`crate::profile::Journal::parse`] re-ingests span lines).
    pub fn dump_jsonl(&self) -> String {
        use crate::export::json_escape;
        use std::fmt::Write as _;
        let mut out = String::new();
        for ev in self.dump() {
            let _ = writeln!(
                out,
                "{{\"type\": \"{}\", \"seq\": {}, \"name\": \"{}\", \"detail\": \"{}\", \
                 \"tid\": {}, \"at_us\": {}, \"dur_us\": {}}}",
                ev.kind,
                ev.seq,
                json_escape(&ev.name),
                json_escape(&ev.detail),
                ev.tid,
                ev.at_us,
                ev.dur_us
            );
        }
        out
    }

    /// Writes the JSONL dump to `path`.
    pub fn dump_to_file(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.dump_jsonl())
    }
}

/// Records a breadcrumb note into the global ring. Always on — notes
/// fire on rare control-flow events (fault injected, retry exhausted,
/// quarantine), never per instruction.
pub fn note(name: impl Into<Cow<'static, str>>, detail: impl Into<String>) {
    FlightRecorder::global().record(FlightEvent {
        seq: 0,
        kind: "note",
        name: name.into(),
        detail: detail.into(),
        tid: crate::span::thread_id(),
        at_us: crate::span::now_us(),
        dur_us: 0,
    });
}

/// Dumps the global ring to `gemstone-flight-<reason>.jsonl` in
/// `$GEMSTONE_FLIGHT_DIR` (default: the system temp directory, so
/// injected-fault test suites don't litter the tree), announcing the
/// path on stderr. Used by the fault/quarantine paths and the panic
/// hook; errors writing the dump are reported, never propagated — the
/// recorder must not turn a diagnosed failure into a new one.
pub fn auto_dump(reason: &str) -> Option<String> {
    let recorder = FlightRecorder::global();
    if recorder.recorded() == 0 {
        return None;
    }
    let dir = std::env::var("GEMSTONE_FLIGHT_DIR")
        .unwrap_or_else(|_| std::env::temp_dir().display().to_string());
    let safe: String = reason
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = format!("{dir}/gemstone-flight-{safe}.jsonl");
    match recorder.dump_to_file(&path) {
        Ok(()) => {
            eprintln!(
                "flight recorder: dumped {} events to {path} ({reason})",
                recorder.dump().len()
            );
            Some(path)
        }
        Err(e) => {
            eprintln!("flight recorder: failed to write {path}: {e}");
            None
        }
    }
}

/// Installs a panic hook that dumps the flight recorder before the
/// previous hook runs. Idempotent per process.
pub fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            auto_dump("panic");
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent_events_in_order() {
        let r = FlightRecorder::with_capacity(16);
        for i in 0..40u64 {
            r.record(FlightEvent {
                seq: 0,
                kind: "note",
                name: Cow::Borrowed("test.note"),
                detail: format!("event {i}"),
                tid: 1,
                at_us: i,
                dur_us: 0,
            });
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 16, "bounded by capacity");
        assert_eq!(r.recorded(), 40);
        let seqs: Vec<u64> = dump.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (24..40).collect::<Vec<_>>(), "oldest evicted first");
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring() {
        let r = FlightRecorder::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..8 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        r.record(FlightEvent {
                            seq: 0,
                            kind: "note",
                            name: Cow::Borrowed("stress"),
                            detail: format!("{t}/{i}"),
                            tid: t,
                            at_us: i,
                            dur_us: 0,
                        });
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 8_000);
        let dump = r.dump();
        assert_eq!(dump.len(), 64);
        // Every retained event is one of the 64 newest sequence numbers.
        for ev in &dump {
            assert!(ev.seq >= 8_000 - 64, "stale event survived: {}", ev.seq);
        }
    }

    #[test]
    fn jsonl_dump_lines_parse() {
        let r = FlightRecorder::with_capacity(16);
        r.record(FlightEvent {
            seq: 0,
            kind: "note",
            name: Cow::Borrowed("faults.retry"),
            detail: "attempt 1 \"quoted\"".to_string(),
            tid: 2,
            at_us: 7,
            dur_us: 0,
        });
        for line in r.dump_jsonl().lines() {
            let v = crate::json::Value::parse(line).expect("valid JSONL");
            assert_eq!(
                v.get("type").and_then(crate::json::Value::as_str),
                Some("note")
            );
        }
    }
}
