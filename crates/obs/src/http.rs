//! Minimal HTTP/1.1 plumbing for serving observability data (and the
//! `gemstone serve` job API) over `std::net` — no external crates, since
//! the build must work without registry access.
//!
//! This is deliberately a *subset* of HTTP/1.1: one request per
//! connection (`Connection: close` on every response), no chunked
//! transfer encoding, no continuation lines, ASCII header names. That
//! subset is what `curl`, Prometheus scrapers and the in-repo tests
//! speak, and keeping the parser small keeps it auditable — a daemon
//! exposed on a socket should not carry a speculative feature surface.
//!
//! Requests larger than the fixed limits ([`MAX_HEAD_BYTES`],
//! [`MAX_BODY_BYTES`]) are rejected during parsing so a misbehaving
//! client cannot make the daemon buffer unbounded input.
//!
//! # Examples
//!
//! ```no_run
//! use gemstone_obs::http::{read_request, respond};
//! use std::net::TcpListener;
//!
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! for stream in listener.incoming() {
//!     let mut stream = stream?;
//!     match read_request(&mut stream) {
//!         Ok(req) if req.path == "/healthz" => {
//!             respond(&mut stream, 200, "application/json", "{\"ok\":true}")?;
//!         }
//!         Ok(_) => respond(&mut stream, 404, "text/plain", "not found")?,
//!         Err(e) => respond(&mut stream, 400, "text/plain", &e.to_string())?,
//!     }
//! }
//! # Ok::<(), std::io::Error>(())
//! ```

use std::io::{Read, Write};

/// Upper bound on the request line plus all headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (job specifications are small; anything
/// larger is a client error, not a bigger buffer).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request: the request line plus the (possibly empty)
/// body. Headers other than `Content-Length` are parsed and discarded —
/// nothing in the service API depends on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method, upper-cased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, e.g. `/jobs/42`. Query strings are kept
    /// verbatim (the service API does not use them).
    pub path: String,
    /// Decoded request body (empty when no `Content-Length` was sent).
    pub body: String,
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// Bytes are consumed one read at a time until the blank line that ends
/// the head, then exactly `Content-Length` body bytes follow. The parser
/// is incremental so it never reads past the request (the connection is
/// closed after one exchange anyway, but the property keeps tests that
/// pipeline on one socket honest).
///
/// # Errors
///
/// [`std::io::ErrorKind::InvalidData`] for malformed requests (bad
/// request line, non-numeric or oversized `Content-Length`, head larger
/// than [`MAX_HEAD_BYTES`]); other kinds propagate from the underlying
/// stream (including `UnexpectedEof` when the peer hangs up mid-request).
pub fn read_request(stream: &mut impl Read) -> std::io::Result<Request> {
    // Accumulate the head byte-by-byte until CRLF CRLF. One-byte reads
    // are fine here: heads are tiny and the OS buffers the socket.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        match stream.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ))
            }
            _ => head.push(byte[0]),
        }
    }
    let head = String::from_utf8(head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Err(bad(format!("malformed request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad Content-Length {value:?}")))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad(format!("body of {content_length} bytes is too large")));
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("request body is not UTF-8"))?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

/// The standard reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` HTTP/1.1 response.
///
/// # Errors
///
/// Propagates write failures from the stream.
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{\"a\":1}\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, "{\"a\":1}\r\n");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let raw = b"POST /jobs HTTP/1.1\r\ncontent-LENGTH: 2\r\n\r\nok";
        assert_eq!(read_request(&mut &raw[..]).unwrap().body, "ok");
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        ] {
            let err = read_request(&mut &raw[..]).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_request_is_unexpected_eof() {
        let raw = b"GET /healthz HTTP/1.1\r\nHos";
        let err = read_request(&mut &raw[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn responses_carry_length_and_close() {
        let mut out = Vec::new();
        respond(&mut out, 202, "application/json", "{\"id\":\"x\"}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 202 Accepted\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"id\":\"x\"}"));
    }
}
