//! Criterion benchmarks for time-parallel segmented simulation
//! (DESIGN.md §12).
//!
//! Splits one long approx-tier trace replay into fixed-size segments and
//! measures the spliced parallel run against the sequential reference at
//! several worker counts. The setup pass asserts the spliced result is
//! bit-identical to the sequential one at every worker count (the whole
//! point of the canonical-partials discipline), prints the measured
//! speedups, and — on machines with at least four cores — asserts the
//! many-worker run is at least 2.5× faster than sequential. Records land
//! in `BENCH_segmented.json` for CI artefact upload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemstone_bench::{write_bench_json, BenchRecord};
use gemstone_uarch::configs::cortex_a15_hw;
use gemstone_uarch::core::Engine;
use gemstone_uarch::segment::{drive_sequential, run_segmented, SegmentPlan};
use gemstone_workloads::suites;
use gemstone_workloads::trace::PackedTrace;

const WORKLOAD: &str = "mi-fft";
const SEED: u64 = 7;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn engine() -> Engine {
    Engine::with_seed(cortex_a15_hw(), 1.0e9, 1, SEED)
}

fn run_sequential(trace: &PackedTrace, plan: &SegmentPlan) -> f64 {
    let mut e = engine();
    drive_sequential(&mut e, plan.seg_instrs(), trace.iter());
    e.finish().cycles
}

fn run_parallel(trace: &PackedTrace, plan: &SegmentPlan, workers: usize) -> f64 {
    let mut e = engine();
    run_segmented(&mut e, plan, workers, |offset| {
        trace.iter_from(offset as usize)
    });
    e.finish().cycles
}

fn segmented(c: &mut Criterion) {
    let spec = suites::by_name(WORKLOAD).unwrap().scaled(0.5);
    let trace = PackedTrace::from_spec(&spec);
    // ~64 segments regardless of workload scale, so every worker count in
    // the sweep has work to steal. The plan carries the segment size, so
    // the sequential reference drains at the same cadence.
    let seg_instrs = (trace.len() as u64 / 64).max(1_024);
    let plan = SegmentPlan::new(trace.len() as u64, seg_instrs);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let t0 = std::time::Instant::now();
    let baseline_cycles = run_sequential(&trace, &plan);
    let baseline = t0.elapsed().as_secs_f64();
    let mut records = vec![BenchRecord::new(
        "segmented",
        "sequential".to_string(),
        baseline,
        1.0,
    )];
    for workers in WORKER_COUNTS {
        let t1 = std::time::Instant::now();
        let cycles = run_parallel(&trace, &plan, workers);
        let wall = t1.elapsed().as_secs_f64();
        assert_eq!(
            cycles.to_bits(),
            baseline_cycles.to_bits(),
            "spliced run diverged from sequential at {workers} workers"
        );
        let speedup = baseline / wall.max(1e-9);
        println!(
            "segmented/{workers} workers: {} segments, {speedup:.2}x vs sequential \
             ({:.1} ms -> {:.1} ms)",
            plan.segment_count(),
            baseline * 1e3,
            wall * 1e3,
        );
        if workers >= 4 && cores >= 4 {
            assert!(
                speedup >= 2.5,
                "expected >= 2.5x at {workers} workers on {cores} cores, got {speedup:.2}x"
            );
        }
        records.push(BenchRecord::new(
            "segmented",
            format!("workers={workers}"),
            wall,
            speedup,
        ));
    }
    write_bench_json("BENCH_segmented.json", &records).expect("write BENCH_segmented.json");

    let mut group = c.benchmark_group("segmented");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("sequential", |b| b.iter(|| run_sequential(&trace, &plan)));
    for workers in WORKER_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("spliced", workers),
            &workers,
            |b, &workers| b.iter(|| run_parallel(&trace, &plan, workers)),
        );
    }
    group.finish();
}

criterion_group!(benches, segmented);
criterion_main!(benches);
