//! Criterion benchmarks for the shared packed-trace layer.
//!
//! Two questions, mirroring the layer's design goals:
//!
//! 1. `generate_vs_replay` — how much cheaper is replaying a packed trace
//!    than re-running the stream generator?
//! 2. `cold_grid` — headline-experiment-scale grid (several workloads ×
//!    five core configurations × four frequencies) with the trace layer
//!    enabled vs disabled, every simulation a cache miss. The acceptance
//!    target is ≥ 1.3× lower wall-time with traces on: each workload's
//!    stream is generated once and replayed for the remaining
//!    (configuration, frequency) tuples.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gemstone_bench::{write_bench_json, BenchRecord};
use gemstone_platform::simcache::SimCache;
use gemstone_uarch::configs::{cortex_a15_hw, cortex_a7_hw, ex5_big, ex5_little, Ex5Variant};
use gemstone_uarch::core::CoreConfig;
use gemstone_workloads::gen::StreamGen;
use gemstone_workloads::spec::WorkloadSpec;
use gemstone_workloads::suites;
use gemstone_workloads::trace::{PackedTrace, TraceCache};
use std::hint::black_box;

fn grid_specs() -> Vec<WorkloadSpec> {
    [
        "mi-sha",
        "mi-fft",
        "mi-bitcount",
        "par-basicmath-rad2deg",
        "parsec-ferret-4",
        "lm-bw-mem-rd",
    ]
    .iter()
    .map(|n| suites::by_name(n).unwrap().scaled(0.05))
    .collect()
}

fn grid_configs() -> Vec<CoreConfig> {
    vec![
        cortex_a15_hw(),
        cortex_a7_hw(),
        ex5_big(Ex5Variant::Old),
        ex5_big(Ex5Variant::Fixed),
        ex5_little(),
    ]
}

const FREQS: [f64; 4] = [600.0e6, 1.0e9, 1.4e9, 1.8e9];

/// Runs the whole grid against `traces`, every simulation executed (no
/// `SimCache` in front), so the only variable is the stream source.
fn run_grid(traces: &TraceCache, specs: &[WorkloadSpec], configs: &[CoreConfig]) {
    for spec in specs {
        for cfg in configs {
            for &freq in &FREQS {
                black_box(SimCache::execute_with(traces, cfg, spec, freq));
            }
        }
    }
}

fn trace_benches(c: &mut Criterion) {
    let spec = suites::by_name("mi-sha").unwrap().scaled(0.5);
    let mut records = Vec::new();
    let timed = |f: &mut dyn FnMut()| {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    };

    let mut g = c.benchmark_group("generate_vs_replay");
    g.sample_size(20);
    g.bench_function("generate_stream", |b| {
        b.iter(|| StreamGen::new(black_box(&spec)).count());
    });
    let trace = PackedTrace::from_spec(&spec);
    g.bench_function("replay_trace", |b| {
        b.iter(|| black_box(&trace).iter().count());
    });
    g.finish();
    // Spot check for the trajectory record: one generation pass vs one
    // decode pass over the same stream.
    let generate = timed(&mut || {
        black_box(StreamGen::new(black_box(&spec)).count());
    });
    let replay = timed(&mut || {
        black_box(black_box(&trace).iter().count());
    });
    records.push(BenchRecord::new(
        "trace",
        "generate_vs_replay".to_string(),
        replay,
        generate / replay.max(1e-9),
    ));

    let specs = grid_specs();
    let configs = grid_configs();
    // Trajectory record: the headline cold grid with the trace layer on
    // vs off (each a fresh cache, every simulation a miss).
    let on = timed(&mut || {
        run_grid(&TraceCache::new(), &specs, &configs);
    });
    let off = timed(&mut || {
        run_grid(&TraceCache::with_budget(0), &specs, &configs);
    });
    records.push(BenchRecord::new(
        "trace",
        "cold_grid/on_vs_off".to_string(),
        on,
        off / on.max(1e-9),
    ));
    write_bench_json("BENCH_trace.json", &records).expect("write BENCH_trace.json");

    let mut g = c.benchmark_group("cold_grid");
    g.sample_size(10);
    g.bench_function("traces_on", |b| {
        b.iter_batched(
            TraceCache::new,
            |traces| run_grid(&traces, &specs, &configs),
            BatchSize::PerIteration,
        );
    });
    g.bench_function("traces_off", |b| {
        b.iter_batched(
            || TraceCache::with_budget(0),
            |traces| run_grid(&traces, &specs, &configs),
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = trace_benches
}
criterion_main!(benches);
