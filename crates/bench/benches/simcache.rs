//! Criterion benchmarks for the memoized simulation layer: power-dataset
//! collection serial vs parallel, and cache cold vs warm.
//!
//! The acceptance target is that a warm-cache `collect` is at least 2×
//! faster than a cold one — on a warm cache only the noise re-application
//! and dataset assembly remain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gemstone_platform::board::OdroidXu3;
use gemstone_platform::dvfs::Cluster;
use gemstone_platform::simcache::SimCache;
use gemstone_powmon::dataset;
use gemstone_workloads::spec::WorkloadSpec;
use gemstone_workloads::suites;
use std::sync::Arc;

fn bench_specs() -> Vec<WorkloadSpec> {
    [
        "mi-sha",
        "mi-crc32",
        "mi-fft",
        "whet-whetstone",
        "dhry-dhrystone",
        "mi-dijkstra",
        "mi-bitcount",
        "lm-bw-mem-rd",
    ]
    .iter()
    .map(|n| suites::by_name(n).unwrap().scaled(0.02))
    .collect()
}

/// A board whose cache is private to the returned instance and empty, so
/// every engine run is a miss.
fn cold_board() -> OdroidXu3 {
    let mut board = OdroidXu3::new();
    board.cache = Arc::new(SimCache::new());
    board
}

fn simcache_benches(c: &mut Criterion) {
    let specs = bench_specs();
    let freqs = [600.0e6, 1000.0e6];

    let mut g = c.benchmark_group("powmon_collect");
    g.sample_size(10);

    g.bench_function("cold_serial", |b| {
        b.iter_batched(
            cold_board,
            |board| dataset::collect_with_threads(&board, Cluster::BigA15, &specs, &freqs, 1),
            BatchSize::PerIteration,
        );
    });

    g.bench_function("cold_parallel4", |b| {
        b.iter_batched(
            cold_board,
            |board| dataset::collect_with_threads(&board, Cluster::BigA15, &specs, &freqs, 4),
            BatchSize::PerIteration,
        );
    });

    // Warm: one shared cache, pre-populated outside the timed region.
    let warm = cold_board();
    dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 1);

    g.bench_function("warm_serial", |b| {
        b.iter(|| dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 1));
    });

    g.bench_function("warm_parallel4", |b| {
        b.iter(|| dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 4));
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = simcache_benches
}
criterion_main!(benches);
