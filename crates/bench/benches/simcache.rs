//! Criterion benchmarks for the memoized simulation layer: power-dataset
//! collection serial vs parallel, and cache cold vs warm.
//!
//! The acceptance target is that a warm-cache `collect` is at least 2×
//! faster than a cold one — on a warm cache only the noise re-application
//! and dataset assembly remain.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gemstone_bench::{write_bench_json, BenchRecord};
use gemstone_platform::board::OdroidXu3;
use gemstone_platform::dvfs::Cluster;
use gemstone_platform::simcache::SimCache;
use gemstone_powmon::dataset;
use gemstone_workloads::spec::WorkloadSpec;
use gemstone_workloads::suites;
use std::sync::Arc;

fn bench_specs() -> Vec<WorkloadSpec> {
    [
        "mi-sha",
        "mi-crc32",
        "mi-fft",
        "whet-whetstone",
        "dhry-dhrystone",
        "mi-dijkstra",
        "mi-bitcount",
        "lm-bw-mem-rd",
    ]
    .iter()
    .map(|n| suites::by_name(n).unwrap().scaled(0.02))
    .collect()
}

/// A board whose cache is private to the returned instance and empty, so
/// every engine run is a miss.
fn cold_board() -> OdroidXu3 {
    let mut board = OdroidXu3::new();
    board.cache = Arc::new(SimCache::new());
    board
}

fn simcache_benches(c: &mut Criterion) {
    let specs = bench_specs();
    let freqs = [600.0e6, 1000.0e6];

    let mut g = c.benchmark_group("powmon_collect");
    g.sample_size(10);

    g.bench_function("cold_serial", |b| {
        b.iter_batched(
            cold_board,
            |board| dataset::collect_with_threads(&board, Cluster::BigA15, &specs, &freqs, 1),
            BatchSize::PerIteration,
        );
    });

    g.bench_function("cold_parallel4", |b| {
        b.iter_batched(
            cold_board,
            |board| dataset::collect_with_threads(&board, Cluster::BigA15, &specs, &freqs, 4),
            BatchSize::PerIteration,
        );
    });

    // Warm: one shared cache, pre-populated outside the timed region.
    let warm = cold_board();
    dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 1);

    g.bench_function("warm_serial", |b| {
        b.iter(|| dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 1));
    });

    g.bench_function("warm_parallel4", |b| {
        b.iter(|| dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 4));
    });

    g.finish();

    // Trajectory records: one timed pass each for the cold serial
    // baseline, the parallel cold collect, and the warm re-collect
    // (speedups relative to cold serial — the ≥2× warm target).
    let timed = |f: &mut dyn FnMut()| {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    };
    let cold_serial = timed(&mut || {
        dataset::collect_with_threads(&cold_board(), Cluster::BigA15, &specs, &freqs, 1);
    });
    let cold_parallel = timed(&mut || {
        dataset::collect_with_threads(&cold_board(), Cluster::BigA15, &specs, &freqs, 4);
    });
    let warm_serial = timed(&mut || {
        dataset::collect_with_threads(&warm, Cluster::BigA15, &specs, &freqs, 1);
    });
    let records = vec![
        BenchRecord::new("simcache", "cold_serial".to_string(), cold_serial, 1.0),
        BenchRecord::new(
            "simcache",
            "cold_parallel4".to_string(),
            cold_parallel,
            cold_serial / cold_parallel.max(1e-9),
        ),
        BenchRecord::new(
            "simcache",
            "warm_serial".to_string(),
            warm_serial,
            cold_serial / warm_serial.max(1e-9),
        ),
    ];
    write_bench_json("BENCH_simcache.json", &records).expect("write BENCH_simcache.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = simcache_benches
}
criterion_main!(benches);
