//! Criterion benchmarks for the GemStone pipeline stages on a reduced
//! workload set (experiment, collation and each analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use gemstone_core::analysis::{
    error_regression, event_compare, gem5_corr, hca_workloads, pmc_corr, summary,
};
use gemstone_core::collate::Collated;
use gemstone_core::experiment::{run_over, ExperimentConfig};
use gemstone_platform::dvfs::Cluster;
use gemstone_platform::gem5sim::Gem5Model;
use gemstone_workloads::suites;

fn fixture() -> (Collated, hca_workloads::WorkloadClusters) {
    let cfg = ExperimentConfig {
        workload_scale: 0.05,
        clusters: vec![Cluster::BigA15],
        models: vec![Gem5Model::Ex5BigOld],
        ..ExperimentConfig::default()
    };
    let names = [
        "mi-sha",
        "mi-crc32",
        "mi-bitcount",
        "mi-stringsearch",
        "mi-fft",
        "parsec-canneal-1",
        "mi-patricia",
        "par-basicmath-rad2deg",
        "lm-bw-mem-rd",
        "mi-typeset",
        "whet-whetstone",
        "dhry-dhrystone",
    ];
    let wl = names
        .iter()
        .map(|n| suites::by_name(n).unwrap().scaled(0.05))
        .collect();
    let collated = Collated::build(&run_over(&cfg, wl));
    let wc = hca_workloads::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, None).unwrap();
    (collated, wc)
}

fn experiment_stage(c: &mut Criterion) {
    c.bench_function("experiment_12wl_1cluster", |b| {
        let cfg = ExperimentConfig {
            workload_scale: 0.02,
            clusters: vec![Cluster::BigA15],
            models: vec![Gem5Model::Ex5BigOld],
            ..ExperimentConfig::default()
        };
        let wl: Vec<_> = ["mi-sha", "mi-crc32", "mi-fft"]
            .iter()
            .map(|n| suites::by_name(n).unwrap().scaled(0.02))
            .collect();
        b.iter(|| run_over(&cfg, wl.clone()));
    });
}

fn analysis_stages(c: &mut Criterion) {
    let (collated, wc) = fixture();
    c.bench_function("analysis_summary", |b| {
        b.iter(|| summary::analyse(&collated).unwrap());
    });
    c.bench_function("analysis_hca_workloads", |b| {
        b.iter(|| hca_workloads::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, None).unwrap());
    });
    c.bench_function("analysis_pmc_corr", |b| {
        b.iter(|| pmc_corr::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, None).unwrap());
    });
    c.bench_function("analysis_gem5_corr", |b| {
        b.iter(|| gem5_corr::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, 0.3).unwrap());
    });
    c.bench_function("analysis_event_compare", |b| {
        b.iter(|| {
            event_compare::analyse(&collated, &wc, Gem5Model::Ex5BigOld, 1.0e9, true).unwrap()
        });
    });
    c.bench_function("analysis_error_regression_hw", |b| {
        b.iter(|| {
            error_regression::analyse(
                &collated,
                Gem5Model::Ex5BigOld,
                1.0e9,
                error_regression::Side::HwPmc,
            )
            .unwrap()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = experiment_stage, analysis_stages
}
criterion_main!(benches);
