//! Criterion benchmarks for the Powmon power-modelling flow.

use criterion::{criterion_group, criterion_main, Criterion};
use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
use gemstone_powmon::model::{EventExpr, PowerModel};
use gemstone_powmon::{dataset, selection};
use gemstone_uarch::pmu;
use gemstone_workloads::suites;

fn power_benches(c: &mut Criterion) {
    let board = OdroidXu3::new();
    let names = [
        "mi-sha",
        "mi-crc32",
        "mi-fft",
        "whet-whetstone",
        "lm-bw-mem-rd",
        "mi-dijkstra",
        "rl-neonspeed",
        "dhry-dhrystone",
        "mi-bitcount",
        "lm-lat-ops-int",
        "rl-memspeed-int",
        "parsec-blackscholes-1",
    ];
    let specs: Vec<_> = names
        .iter()
        .map(|n| suites::by_name(n).unwrap().scaled(0.05))
        .collect();
    let ds = dataset::collect(&board, Cluster::BigA15, &specs, &[600.0e6, 1000.0e6]);

    c.bench_function("powmon_collect_12wl_2freq", |b| {
        b.iter(|| dataset::collect(&board, Cluster::BigA15, &specs[..4], &[1000.0e6]));
    });

    c.bench_function("powmon_select_events", |b| {
        let opts = selection::SelectionOptions {
            max_terms: 5,
            ..selection::SelectionOptions::default()
        };
        b.iter(|| selection::select_events(&ds, &opts).unwrap());
    });

    let terms = vec![
        EventExpr::single(pmu::CPU_CYCLES),
        EventExpr::diff(pmu::INST_SPEC, pmu::DP_SPEC),
        EventExpr::single(pmu::L1D_CACHE),
        EventExpr::single(pmu::L2D_CACHE),
    ];
    c.bench_function("powmon_fit", |b| {
        b.iter(|| PowerModel::fit(&ds, &terms).unwrap());
    });

    let model = PowerModel::fit(&ds, &terms).unwrap();
    c.bench_function("powmon_quality", |b| {
        b.iter(|| model.quality(&ds).unwrap());
    });
    let rates = ds.observations[0].rates.clone();
    c.bench_function("powmon_predict", |b| {
        b.iter(|| model.predict(1000.0e6, &rates).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = power_benches
}
criterion_main!(benches);
