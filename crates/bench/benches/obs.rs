//! Criterion benchmarks for the observability layer. The contract under
//! test: a span on the disabled path costs one relaxed atomic load (no
//! clock read, no allocation), counters are a single relaxed `fetch_add`,
//! and a Prometheus export over a few hundred metrics stays in the
//! microsecond range.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use gemstone_obs::{export, Registry, SpanLog};

fn obs_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");

    gemstone_obs::set_enabled(false);
    g.bench_function("span_disabled", |b| {
        b.iter(|| gemstone_obs::span::span(black_box("bench.disabled")))
    });

    gemstone_obs::set_enabled(true);
    // The span log is unbounded, so clear it per batch to keep the
    // resident set flat while still timing the hot record path.
    g.bench_function("span_enabled", |b| {
        b.iter_batched(
            || SpanLog::global().clear(),
            |()| gemstone_obs::span::span(black_box("bench.enabled")),
            BatchSize::NumIterations(10_000),
        )
    });
    SpanLog::global().clear();
    gemstone_obs::set_enabled(false);

    let counter = Registry::global().counter("bench.counter");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));

    let histogram = Registry::global().histogram("bench.histogram", &[0.001, 0.01, 0.1, 1.0]);
    g.bench_function("histogram_observe", |b| {
        b.iter(|| histogram.observe(black_box(0.005)))
    });

    for i in 0..256u64 {
        Registry::global()
            .counter(&format!("bench.fill.{i}"))
            .add(i);
    }
    g.bench_function("prometheus_export", |b| {
        b.iter(|| export::prometheus(black_box(Registry::global())))
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = obs_benches
}
criterion_main!(benches);
