//! Criterion benchmarks for the statistics toolkit at the problem sizes
//! GemStone actually uses (45 workloads × ~70 events).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_stats::cluster::{Hca, Linkage, Metric};
use gemstone_stats::regress::Ols;
use gemstone_stats::stepwise::{forward_select, Candidate, StepwiseOptions};

fn pseudo(i: usize, j: usize) -> f64 {
    let h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

fn hca_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("hca");
    for &n in &[45usize, 90, 180] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..64).map(|j| pseudo(i, j)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("ward", n), &rows, |b, rows| {
            b.iter(|| Hca::new(rows, Metric::Euclidean, Linkage::Ward).unwrap());
        });
    }
    group.finish();
}

fn ols_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("ols");
    for &k in &[4usize, 8, 16] {
        let n = 260;
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..k).map(|j| pseudo(i, j)).collect())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| (0..k).map(|j| (j + 1) as f64 * pseudo(i, j)).sum::<f64>() + pseudo(i, 99))
            .collect();
        let names: Vec<String> = (0..k).map(|j| format!("x{j}")).collect();
        group.bench_with_input(
            BenchmarkId::new("fit", k),
            &(x, y, names),
            |b, (x, y, n)| {
                b.iter(|| Ols::fit(x, y, n).unwrap());
            },
        );
    }
    group.finish();
}

fn stepwise_benchmark(c: &mut Criterion) {
    let n = 45;
    // 60 candidates, 3 informative.
    let cands: Vec<Candidate> = (0..60)
        .map(|j| Candidate::new(format!("c{j}"), (0..n).map(|i| pseudo(i, j)).collect()))
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 3.0 * pseudo(i, 0) - 2.0 * pseudo(i, 1) + pseudo(i, 2) + 0.1 * pseudo(i, 77))
        .collect();
    c.bench_function("stepwise_60x45", |b| {
        b.iter(|| forward_select(&cands, &y, &StepwiseOptions::default()).unwrap());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = hca_benchmark, ols_benchmark, stepwise_benchmark
}
criterion_main!(benches);
