//! Criterion benchmarks for the multi-fidelity execution tiers.
//!
//! Runs three representative workloads through each tier over the same
//! pre-encoded [`PackedTrace`] so the comparison isolates the execution
//! backend, not trace generation. Besides the raw per-tier timings (from
//! which Criterion's reports give the atomic-vs-approx speedup), the
//! setup pass prints the sampled tier's IPC error against the approx
//! reference so a bench run doubles as an accuracy spot-check; the same
//! pass times one run per (tier, workload) and records it against the
//! approx baseline in `BENCH_fidelity.json` for the CI bench trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemstone_bench::{write_bench_json, BenchRecord};
use gemstone_uarch::backend::{Backend, SampleParams, TierConfig};
use gemstone_uarch::configs::{ex5_big, Ex5Variant};
use gemstone_workloads::suites;
use gemstone_workloads::trace::PackedTrace;

const WORKLOADS: [&str; 3] = ["mi-fft", "parsec-canneal-4", "dhry-dhrystone"];
const SEED: u64 = 7;

fn tier_configs() -> [(&'static str, TierConfig); 3] {
    [
        ("atomic", TierConfig::atomic()),
        ("approx", TierConfig::approx()),
        ("sampled", TierConfig::sampled(SampleParams::default())),
    ]
}

fn fidelity_tiers(c: &mut Criterion) {
    let cfg = ex5_big(Ex5Variant::Old);
    let mut group = c.benchmark_group("fidelity_tiers");
    let mut records = Vec::new();
    for name in WORKLOADS {
        let spec = suites::by_name(name).unwrap().scaled(0.5);
        let trace = PackedTrace::from_spec(&spec);
        group.throughput(Throughput::Elements(trace.len() as u64));

        // Accuracy spot-check, printed once per workload: the sampled
        // tier's IPC deviation from the approx reference on this trace.
        let reference = trace.run_backend(&mut Backend::new(
            TierConfig::approx(),
            &cfg,
            1.0e9,
            1,
            SEED,
        ));
        let sampled = trace.run_backend(&mut Backend::new(
            TierConfig::sampled(SampleParams::default()),
            &cfg,
            1.0e9,
            1,
            SEED,
        ));
        let err = (sampled.stats.ipc() - reference.stats.ipc()) / reference.stats.ipc() * 100.0;
        println!(
            "fidelity_tiers/{name}: sampled IPC error {err:+.2} % \
             ({} windows, coverage {:.0} %)",
            sampled.stats.sample.as_ref().map_or(0, |m| m.windows),
            sampled.stats.sample.as_ref().map_or(0.0, |m| m.coverage) * 100.0,
        );

        // Timed spot-check per tier: speedup is relative to the approx
        // tier on the same trace (a within-machine ratio, so committed
        // baselines compare across runner hardware).
        let time_tier = |tier: TierConfig| {
            let t0 = std::time::Instant::now();
            let mut backend = Backend::new(tier, &cfg, 1.0e9, 1, SEED);
            trace.run_backend(&mut backend);
            t0.elapsed().as_secs_f64()
        };
        let approx_s = time_tier(TierConfig::approx());
        for (label, tier) in tier_configs() {
            let wall_s = time_tier(tier);
            records.push(BenchRecord::new(
                "fidelity",
                format!("{label}/{name}"),
                wall_s,
                approx_s / wall_s.max(1e-9),
            ));
            group.bench_with_input(
                BenchmarkId::new(label, name),
                &(tier, &trace),
                |b, (tier, trace)| {
                    b.iter(|| {
                        let mut backend = Backend::new(*tier, &cfg, 1.0e9, 1, SEED);
                        trace.run_backend(&mut backend)
                    });
                },
            );
        }
    }
    write_bench_json("BENCH_fidelity.json", &records).expect("write BENCH_fidelity.json");
    group.finish();
}

/// Sampled-tier cost as a function of coverage: the detailed fraction is
/// the knob users turn, so chart how run time scales with it.
fn sampled_coverage(c: &mut Criterion) {
    let cfg = ex5_big(Ex5Variant::Old);
    let spec = suites::by_name("mi-fft").unwrap().scaled(0.5);
    let trace = PackedTrace::from_spec(&spec);
    let mut group = c.benchmark_group("sampled_coverage");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (label, interval) in [("dense", 1_000_u64), ("default", 2_000), ("sparse", 8_000)] {
        let params = SampleParams {
            interval,
            ..SampleParams::default()
        };
        group.bench_with_input(BenchmarkId::new("interval", label), &params, |b, params| {
            b.iter(|| {
                let mut backend = Backend::new(TierConfig::sampled(*params), &cfg, 1.0e9, 1, SEED);
                trace.run_backend(&mut backend)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fidelity_tiers, sampled_coverage);
criterion_main!(benches);
