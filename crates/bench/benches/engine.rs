//! Criterion benchmarks for the micro-architecture timing engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemstone_uarch::configs::{cortex_a15_hw, cortex_a7_hw, ex5_big, Ex5Variant};
use gemstone_uarch::core::Engine;
use gemstone_workloads::gen::StreamGen;
use gemstone_workloads::suites;

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    let n = 50_000_u64;
    for (label, cfg) in [
        ("cortex_a15_hw", cortex_a15_hw()),
        ("cortex_a7_hw", cortex_a7_hw()),
        ("ex5_big_old", ex5_big(Ex5Variant::Old)),
    ] {
        let spec = suites::by_name("mi-fft")
            .unwrap()
            .scaled(n as f64 / 200_000.0);
        let stream: Vec<_> = StreamGen::new(&spec).collect();
        group.throughput(Throughput::Elements(stream.len() as u64));
        group.bench_with_input(BenchmarkId::new("run", label), &stream, |b, stream| {
            b.iter(|| {
                let mut e = Engine::new(cfg.clone(), 1.0e9, 1);
                e.run(stream.iter().copied())
            });
        });
    }
    group.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for name in ["mi-fft", "parsec-canneal-4", "mi-typeset"] {
        let spec = suites::by_name(name).unwrap().scaled(0.25);
        group.throughput(Throughput::Elements(spec.instructions));
        group.bench_with_input(BenchmarkId::new("generate", name), &spec, |b, spec| {
            b.iter(|| StreamGen::new(spec).count());
        });
    }
    group.finish();
}

fn branch_predictors(c: &mut Criterion) {
    use gemstone_uarch::branch::{
        BimodalPredictor, DirectionPredictor, GsharePredictor, TournamentPredictor,
    };
    type PredictorCtor = Box<dyn Fn() -> Box<dyn DirectionPredictor>>;
    let mut group = c.benchmark_group("branch_predictors");
    let outcomes: Vec<bool> = (0..10_000).map(|i| i % 3 != 0).collect();
    let mk: Vec<(&str, PredictorCtor)> = vec![
        (
            "bimodal",
            Box::new(|| Box::new(BimodalPredictor::new(4096))),
        ),
        (
            "gshare",
            Box::new(|| Box::new(GsharePredictor::new(4096, 12, false))),
        ),
        (
            "tournament",
            Box::new(|| Box::new(TournamentPredictor::new(2048, 8192, 12))),
        ),
    ];
    for (label, make) in mk {
        group.throughput(Throughput::Elements(outcomes.len() as u64));
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut p = make();
                let mut correct = 0u32;
                for (i, &t) in outcomes.iter().enumerate() {
                    let pr = p.predict((i % 64) as u32);
                    correct += u32::from(pr == t);
                    p.update((i % 64) as u32, t, pr != t);
                }
                correct
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_throughput, workload_generation, branch_predictors
}
criterion_main!(benches);
