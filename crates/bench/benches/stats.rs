//! Fast-vs-reference benchmarks for the analysis-layer hot paths: the
//! Gram-matrix stepwise scan, the parallel correlation sweep, and the
//! nearest-neighbour-chain HCA — each against the retained naive
//! implementation it replaced. A spot-check pass times each fast/naive
//! pair once and records the speedups in `BENCH_stats.json` so the CI
//! bench trajectory covers the analysis layer too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gemstone_bench::{write_bench_json, BenchRecord};
use gemstone_stats::cluster::{Hca, Linkage, Metric};
use gemstone_stats::corr::{spearman, spearman_sweep};
use gemstone_stats::stepwise::{
    forward_select, forward_select_reference, Candidate, StepwiseOptions,
};
use gemstone_stats::threads::set_worker_threads;

fn pseudo(i: usize, j: usize) -> f64 {
    let h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
    ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
}

/// §IV-D at gem5-statistic scale: ~2000 candidate columns, few informative.
fn stepwise_benchmark(c: &mut Criterion) {
    let n = 64;
    let p = 2000;
    let cands: Vec<Candidate> = (0..p)
        .map(|j| Candidate::new(format!("c{j}"), (0..n).map(|i| pseudo(i, j)).collect()))
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 3.0 * pseudo(i, 0) - 2.0 * pseudo(i, 1) + pseudo(i, 2) + 0.05 * pseudo(i, 7777))
        .collect();
    let opts = StepwiseOptions::default();

    let mut group = c.benchmark_group("stepwise_2000x64");
    group.sample_size(10);
    group.bench_function("gram_fast", |b| {
        b.iter(|| forward_select(&cands, &y, &opts).unwrap());
    });
    group.bench_function("qr_reference", |b| {
        b.iter(|| forward_select_reference(&cands, &y, &opts).unwrap());
    });
    group.finish();
}

/// Fig. 5-style rank-correlation of many columns against one error vector.
fn sweep_benchmark(c: &mut Criterion) {
    let n = 64;
    let p = 4000;
    let cols: Vec<Vec<f64>> = (0..p)
        .map(|j| (0..n).map(|i| pseudo(i, j)).collect())
        .collect();
    let y: Vec<f64> = (0..n).map(|i| pseudo(i, 9999)).collect();

    let mut group = c.benchmark_group("spearman_4000x64");
    group.bench_function("pairwise", |b| {
        b.iter(|| {
            cols.iter()
                .map(|col| spearman(col, &y).unwrap())
                .collect::<Vec<f64>>()
        });
    });
    group.bench_function("sweep_serial", |b| {
        set_worker_threads(1);
        b.iter(|| spearman_sweep(&cols, &y).unwrap());
        set_worker_threads(0);
    });
    group.bench_function("sweep_parallel", |b| {
        b.iter(|| spearman_sweep(&cols, &y).unwrap());
    });
    group.finish();
}

/// Workload/event clustering: NN-chain vs the retained O(n³) reference.
fn hca_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("hca_ward");
    for &n in &[64usize, 256] {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..32).map(|j| pseudo(i, j)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::new("nn_chain", n), &rows, |b, rows| {
            b.iter(|| Hca::new(rows, Metric::Euclidean, Linkage::Ward).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &rows, |b, rows| {
            b.iter(|| Hca::new_reference(rows, Metric::Euclidean, Linkage::Ward).unwrap());
        });
    }
    group.finish();
}

/// One timed pass per fast/reference pair, recorded as the analysis
/// layer's `BENCH_stats.json` trajectory entry (speedup = reference wall
/// over fast wall — a within-machine ratio, robust across runners).
fn record_trajectory(_c: &mut Criterion) {
    let timed = |f: &mut dyn FnMut()| {
        let t0 = std::time::Instant::now();
        f();
        t0.elapsed().as_secs_f64()
    };
    let mut records = Vec::new();

    let n = 64;
    let p = 2000;
    let cands: Vec<Candidate> = (0..p)
        .map(|j| Candidate::new(format!("c{j}"), (0..n).map(|i| pseudo(i, j)).collect()))
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 3.0 * pseudo(i, 0) - 2.0 * pseudo(i, 1) + pseudo(i, 2) + 0.05 * pseudo(i, 7777))
        .collect();
    let opts = StepwiseOptions::default();
    let fast = timed(&mut || {
        forward_select(&cands, &y, &opts).unwrap();
    });
    let reference = timed(&mut || {
        forward_select_reference(&cands, &y, &opts).unwrap();
    });
    records.push(BenchRecord::new(
        "stats",
        "stepwise/gram_vs_qr".to_string(),
        fast,
        reference / fast.max(1e-9),
    ));

    let cols: Vec<Vec<f64>> = (0..4000)
        .map(|j| (0..n).map(|i| pseudo(i, j)).collect())
        .collect();
    let yy: Vec<f64> = (0..n).map(|i| pseudo(i, 9999)).collect();
    let pairwise = timed(&mut || {
        for col in &cols {
            spearman(col, &yy).unwrap();
        }
    });
    let sweep = timed(&mut || {
        spearman_sweep(&cols, &yy).unwrap();
    });
    records.push(BenchRecord::new(
        "stats",
        "spearman/sweep_vs_pairwise".to_string(),
        sweep,
        pairwise / sweep.max(1e-9),
    ));

    let rows: Vec<Vec<f64>> = (0..256)
        .map(|i| (0..32).map(|j| pseudo(i, j)).collect())
        .collect();
    let chain = timed(&mut || {
        Hca::new(&rows, Metric::Euclidean, Linkage::Ward).unwrap();
    });
    let naive = timed(&mut || {
        Hca::new_reference(&rows, Metric::Euclidean, Linkage::Ward).unwrap();
    });
    records.push(BenchRecord::new(
        "stats",
        "hca/nn_chain_vs_naive_256".to_string(),
        chain,
        naive / chain.max(1e-9),
    ));

    write_bench_json("BENCH_stats.json", &records).expect("write BENCH_stats.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = stepwise_benchmark, sweep_benchmark, hca_benchmark, record_trajectory
}
criterion_main!(benches);
