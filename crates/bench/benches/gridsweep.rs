//! Criterion benchmarks for fused multi-frequency grid replay.
//!
//! Compares filling a cluster's full DVFS frequency column the old way —
//! one independent backend run per frequency, each re-decoding the packed
//! trace and re-simulating every shared structure — against one
//! [`GridBackend`] pass that decodes once and carries all frequencies as
//! lanes. Covered per cluster (A7 and A15 columns) and across the three
//! fidelity tiers. The setup pass prints the measured fused-vs-scalar
//! speedup per (cluster, tier), so a bench run doubles as a check of the
//! ≥3× target on the A15 approx column; the same measurements land in
//! `BENCH_gridsweep.json` for CI artefact upload.
//!
//! Results are bit-identical by construction (debug builds cross-check
//! every lane against a per-frequency reference engine); release bench
//! runs measure the fused path without that overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemstone_bench::{write_bench_json, BenchRecord};
use gemstone_platform::dvfs::Cluster;
use gemstone_uarch::backend::{Backend, SampleParams, TierConfig};
use gemstone_uarch::configs::{cortex_a15_hw, cortex_a7_hw};
use gemstone_uarch::core::CoreConfig;
use gemstone_uarch::grid::GridBackend;
use gemstone_workloads::suites;
use gemstone_workloads::trace::PackedTrace;

const WORKLOAD: &str = "mi-fft";
const SEED: u64 = 7;

fn clusters() -> [(&'static str, CoreConfig, &'static [f64]); 2] {
    [
        ("a7", cortex_a7_hw(), Cluster::LittleA7.frequencies()),
        ("a15", cortex_a15_hw(), Cluster::BigA15.frequencies()),
    ]
}

fn tier_configs() -> [(&'static str, TierConfig); 3] {
    [
        ("atomic", TierConfig::atomic()),
        ("approx", TierConfig::approx()),
        ("sampled", TierConfig::sampled(SampleParams::default())),
    ]
}

fn run_per_frequency(
    trace: &PackedTrace,
    cfg: &CoreConfig,
    freqs: &[f64],
    tier: TierConfig,
) -> f64 {
    let mut total = 0.0;
    for &f in freqs {
        let mut backend = Backend::new(tier, cfg, f, 1, SEED);
        total += trace.run_backend(&mut backend).cycles;
    }
    total
}

fn run_fused(trace: &PackedTrace, cfg: &CoreConfig, freqs: &[f64], tier: TierConfig) -> f64 {
    let mut backend = GridBackend::new(tier, cfg, freqs, 1, SEED);
    trace.run_grid(&mut backend).iter().map(|r| r.cycles).sum()
}

fn grid_sweep(c: &mut Criterion) {
    let spec = suites::by_name(WORKLOAD).unwrap().scaled(0.5);
    let trace = PackedTrace::from_spec(&spec);
    let mut group = c.benchmark_group("grid_sweep");
    group.sample_size(10);
    let mut records = Vec::new();

    for (cluster, cfg, freqs) in clusters() {
        // One decoded instruction per lane of the column.
        group.throughput(Throughput::Elements(
            trace.len() as u64 * freqs.len() as u64,
        ));
        for (tier_name, tier) in tier_configs() {
            // Speedup spot-check, printed once per (cluster, tier): the
            // wall-clock ratio of the per-frequency column to one fused
            // replay of the same column.
            let t0 = std::time::Instant::now();
            let scalar_cycles = run_per_frequency(&trace, &cfg, freqs, tier);
            let scalar = t0.elapsed();
            let t1 = std::time::Instant::now();
            let fused_cycles = run_fused(&trace, &cfg, freqs, tier);
            let fused = t1.elapsed();
            assert_eq!(
                scalar_cycles.to_bits(),
                fused_cycles.to_bits(),
                "fused column diverged from per-frequency runs"
            );
            let speedup = scalar.as_secs_f64() / fused.as_secs_f64().max(1e-9);
            println!(
                "grid_sweep/{cluster}/{tier_name}: {} lanes, fused {speedup:.1}x faster \
                 ({:.1} ms -> {:.1} ms)",
                freqs.len(),
                scalar.as_secs_f64() * 1e3,
                fused.as_secs_f64() * 1e3,
            );
            records.push(BenchRecord::new(
                "grid_sweep",
                format!("{cluster}/{tier_name}"),
                fused.as_secs_f64(),
                speedup,
            ));

            group.bench_with_input(
                BenchmarkId::new(format!("{cluster}_per_frequency"), tier_name),
                &tier,
                |b, &tier| b.iter(|| run_per_frequency(&trace, &cfg, freqs, tier)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{cluster}_fused"), tier_name),
                &tier,
                |b, &tier| b.iter(|| run_fused(&trace, &cfg, freqs, tier)),
            );
        }
    }
    write_bench_json("BENCH_gridsweep.json", &records).expect("write BENCH_gridsweep.json");
    group.finish();
}

criterion_group!(benches, grid_sweep);
criterion_main!(benches);
