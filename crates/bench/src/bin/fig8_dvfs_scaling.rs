//! Fig. 8 — performance, power and energy scaling normalised to the
//! Cortex-A7 at 200 MHz, hardware vs models.
//!
//! Paper targets: A15 speedup 1.8 GHz vs 600 MHz — hardware 2.7×
//! (range 2.1–3.2×), model 2.9× (2.8–3.0×, i.e. the model misses the
//! workload diversity); energy ratio — hardware 1.8× (1.7–2.3×), model
//! 1.7× (1.6–1.9×).

use gemstone_bench::{banner, paper_vs, workload_scale};
use gemstone_core::analysis::scaling;
use gemstone_core::collate::Collated;
use gemstone_core::experiment::{run_validation, ExperimentConfig};
use gemstone_core::report::Table;
use gemstone_platform::gem5sim::Gem5Model;
use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
use gemstone_powmon::{dataset, model::PowerModel, selection};
use gemstone_workloads::suites;
use std::collections::BTreeMap;

fn main() {
    banner("Fig. 8: DVFS scaling vs hardware", "§VI, Fig. 8");
    // The paper's Fig. 8 predates the BP fix: the model curves come from
    // the old ex5_big (which is what makes the modelled A15 look slow
    // relative to the A7).
    let cfg = ExperimentConfig {
        workload_scale: workload_scale(),
        models: vec![Gem5Model::Ex5Little, Gem5Model::Ex5BigOld],
        ..ExperimentConfig::default()
    };
    let data = run_validation(&cfg);
    let collated = Collated::build(&data);

    // Power models for both clusters.
    let board = OdroidXu3::new();
    let specs: Vec<_> = suites::power_suite()
        .iter()
        .map(|w| w.scaled(workload_scale()))
        .collect();
    let mut power = BTreeMap::new();
    for cluster in [Cluster::LittleA7, Cluster::BigA15] {
        let ds = dataset::collect(&board, cluster, &specs, cluster.frequencies());
        let opts = selection::SelectionOptions {
            restricted_pool: Some(selection::gem5_compatible_pool()),
            ..selection::SelectionOptions::default()
        };
        let sel = selection::select_events(&ds, &opts).expect("selection");
        power.insert(
            cluster.name(),
            PowerModel::fit(&ds, &sel.terms).expect("fit"),
        );
    }

    let s = scaling::analyse(
        &collated,
        &power,
        &[Gem5Model::Ex5Little, Gem5Model::Ex5BigOld],
    )
    .expect("scaling");

    let mut t = Table::new(vec![
        "cluster/freq",
        "perf HW",
        "perf model",
        "power HW",
        "power model",
        "energy HW",
        "energy model",
    ]);
    for p in &s.points {
        t.row(vec![
            format!("{} @{:.0} MHz", p.model.cluster().name(), p.freq_hz / 1e6),
            format!("{:.2}", p.hw_perf),
            format!("{:.2}", p.gem5_perf),
            format!("{:.2}", p.hw_power),
            format!("{:.2}", p.gem5_power),
            format!("{:.2}", p.hw_energy),
            format!("{:.2}", p.gem5_energy),
        ]);
    }
    println!("normalised to Cortex-A7 @ 200 MHz:\n{}", t.render());

    if let Some((hw, g5)) = s.a15_speedup {
        println!(
            "{}",
            paper_vs(
                "A15 speedup 1.8 GHz vs 600 MHz (HW)",
                "2.7x (2.1-3.2x)",
                &format!("{:.1}x ({:.1}-{:.1}x)", hw.mean, hw.min, hw.max)
            )
        );
        println!(
            "{}",
            paper_vs(
                "A15 speedup (model)",
                "2.9x (2.8-3.0x)",
                &format!("{:.1}x ({:.1}-{:.1}x)", g5.mean, g5.min, g5.max)
            )
        );
        println!(
            "paper: the model misses workload diversity — its speedup range is much\n\
             narrower than hardware's ({:.2} vs {:.2} here).",
            g5.max - g5.min,
            hw.max - hw.min
        );
    }
    if let Some((hw, g5)) = s.a15_energy_ratio {
        println!(
            "{}",
            paper_vs(
                "A15 energy ratio 1.8 GHz vs 600 MHz (HW)",
                "1.8x (1.7-2.3x)",
                &format!("{:.1}x ({:.1}-{:.1}x)", hw.mean, hw.min, hw.max)
            )
        );
        println!(
            "{}",
            paper_vs(
                "A15 energy ratio (model)",
                "1.7x (1.6-1.9x)",
                &format!("{:.1}x ({:.1}-{:.1}x)", g5.mean, g5.min, g5.max)
            )
        );
    }
}
