//! E1/E12 — headline execution-time errors (§IV of the paper).
//!
//! Paper targets: 45-workload MAPE 40 % / MPE −21 % (both clusters, all
//! DVFS, old big model + LITTLE model); A15(old)@1 GHz 59 % / −51 %;
//! A7@1 GHz 20 % / +8.5 %; PARSEC-only 25.5 % / −7.5 %; MPE grows more
//! positive with frequency.

use gemstone_bench::{banner, full_config, paper_vs};
use gemstone_core::analysis::summary;
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_core::persist;
use gemstone_core::report::Table;
use gemstone_platform::gem5sim::Gem5Model;

fn main() {
    banner("E1/E12: headline execution-time errors", "§IV");
    let data = run_validation(&full_config());
    let collated = Collated::build(&data);
    let s = summary::analyse(&collated).expect("summary");

    let mut t = Table::new(vec!["model", "freq", "subset", "n", "MAPE %", "MPE %"]);
    for r in &s.rows {
        t.row(vec![
            r.model.name().to_string(),
            r.freq_hz
                .map_or("all".into(), |f| format!("{:.0} MHz", f / 1e6)),
            r.subset.to_string(),
            r.n.to_string(),
            format!("{:.1}", r.mape),
            format!("{:+.1}", r.mpe),
        ]);
    }
    println!("{}", t.render());

    // Paper-vs-measured.
    if let Some(r) = s.at(Gem5Model::Ex5BigOld, 1.0e9) {
        println!(
            "{}",
            paper_vs(
                "A15 ex5_big(old) @1 GHz MAPE/MPE",
                "59% / -51%",
                &format!("{:.0}% / {:+.0}%", r.mape, r.mpe)
            )
        );
    }
    if let Some(r) = s.at(Gem5Model::Ex5Little, 1.0e9) {
        println!(
            "{}",
            paper_vs(
                "A7 ex5_LITTLE @1 GHz MAPE/MPE",
                "20% / +8.5%",
                &format!("{:.0}% / {:+.0}%", r.mape, r.mpe)
            )
        );
    }
    // Pooled over both clusters (old big + LITTLE, the paper's §IV claim).
    let both: Vec<&gemstone_core::collate::WorkloadRecord> = collated
        .records
        .iter()
        .filter(|r| matches!(r.model, Gem5Model::Ex5BigOld | Gem5Model::Ex5Little))
        .collect();
    let hw: Vec<f64> = both.iter().map(|r| r.hw_time_s).collect();
    let g5: Vec<f64> = both.iter().map(|r| r.gem5_time_s).collect();
    let mape = gemstone_stats::metrics::mape(&hw, &g5).expect("mape");
    let mpe = gemstone_stats::metrics::mpe(&hw, &g5).expect("mpe");
    println!(
        "{}",
        paper_vs(
            "both clusters, all DVFS MAPE/MPE",
            "40% / -21%",
            &format!("{mape:.0}% / {mpe:+.0}%")
        )
    );
    let parsec = s.rows.iter().filter(|r| {
        r.subset == "parsec" && matches!(r.model, Gem5Model::Ex5BigOld | Gem5Model::Ex5Little)
    });
    let (mut pm, mut pa, mut n) = (0.0, 0.0, 0);
    for r in parsec {
        pm += r.mpe * r.n as f64;
        pa += r.mape * r.n as f64;
        n += r.n;
    }
    if n > 0 {
        println!(
            "{}",
            paper_vs(
                "PARSEC subset MAPE/MPE",
                "25.5% / -7.5%",
                &format!("{:.1}% / {:+.1}%", pa / n as f64, pm / n as f64)
            )
        );
    }
    println!("\nPer-frequency MPE trend (ex5_big old):");
    for (f, m) in s.mpe_trend(Gem5Model::Ex5BigOld) {
        println!("  {:>6.0} MHz  {m:+.1} %", f / 1e6);
    }

    // Ship the dataset, like the paper's published experimental data.
    if let Err(e) = persist::export_csv(&collated, "results/validation_records.csv") {
        eprintln!("csv export failed: {e}");
    } else {
        println!("\nper-record dataset written to results/validation_records.csv");
    }
}
