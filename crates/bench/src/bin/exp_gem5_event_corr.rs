//! E5 — gem5-statistic correlation clusters (§IV-C of the paper).
//!
//! Paper: 94 statistics clear |r| ≥ 0.3; the largest cluster (A) holds 31
//! ITLB-walker-cache events with r < −0.51; Cluster B holds 14
//! branch-prediction events (−0.46…−0.31); Cluster C holds L1I-miss events
//! (≈ −0.35).

use gemstone_bench::{a15_old_config, banner, paper_vs};
use gemstone_core::analysis::gem5_corr;
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_platform::gem5sim::Gem5Model;

fn main() {
    banner("E5: gem5 event correlation clusters", "§IV-C");
    let data = run_validation(&a15_old_config());
    let collated = Collated::build(&data);
    let gc =
        gem5_corr::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, 0.3).expect("gem5 correlations");

    println!(
        "{}",
        paper_vs(
            "statistics with |r| >= 0.3",
            "94",
            &gc.entries.len().to_string()
        )
    );
    println!();
    for c in &gc.clusters {
        println!(
            "cluster {:>2} ({} members, mean r = {:+.2}):",
            c.id,
            c.members.len(),
            c.mean_correlation
        );
        for m in c.members.iter().take(8) {
            let r = gc.correlation_of(m).unwrap_or(f64::NAN);
            println!("    {r:+.2}  {m}");
        }
        if c.members.len() > 8 {
            println!("    … and {} more", c.members.len() - 8);
        }
    }

    println!("\nten most negative statistics:");
    for e in gc.entries.iter().take(10) {
        println!(
            "  {:+.2}  {}  (cluster {})",
            e.correlation, e.stat, e.cluster_id
        );
    }
    println!(
        "\npaper's Cluster A: itb_walker_cache events (BP bug → wrong-path fetch floods\n\
         the split L2 ITLB); check whether the walker-cache and branch statistics\n\
         dominate the negative tail above."
    );
}
