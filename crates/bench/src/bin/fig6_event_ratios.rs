//! Fig. 6 — gem5 event counts normalised to their HW PMC equivalents,
//! per HCA cluster and as the extreme-cluster-excluded mean.

use gemstone_bench::{a15_old_config, banner, paper_vs};
use gemstone_core::analysis::{event_compare, hca_workloads};
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_core::report::Table;
use gemstone_platform::gem5sim::Gem5Model;
use gemstone_uarch::pmu;

fn main() {
    banner("Fig. 6: matched gem5/HW event ratios", "§IV-E, Fig. 6");
    let data = run_validation(&a15_old_config());
    let collated = Collated::build(&data);
    let wc = hca_workloads::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, Some(16))
        .expect("clustering");
    let cmp = event_compare::analyse(&collated, &wc, Gem5Model::Ex5BigOld, 1.0e9, true)
        .expect("event comparison");

    let paper: &[(u16, &str)] = &[
        (pmu::INST_RETIRED, "~1.0x"),
        (pmu::L1I_TLB_REFILL, "0.06x"),
        (pmu::L1D_TLB_REFILL, "1.7x"),
        (pmu::BR_PRED, "1.1x"),
        (pmu::BR_MIS_PRED, "21x"),
        (pmu::L1I_CACHE, "2x"),
        (pmu::L1D_CACHE_REFILL_ST, "9.9x"),
        (pmu::L1D_CACHE_WB, "19x"),
        (pmu::INST_SPEC, "1.1x"),
    ];
    let mut t = Table::new(vec!["event", "measured", "paper"]);
    for r in &cmp.mean {
        let p = paper
            .iter()
            .find(|(e, _)| *e == r.event)
            .map_or("-", |(_, p)| p);
        t.row(vec![
            r.name.to_string(),
            format!("{:.2}x", r.ratio),
            p.to_string(),
        ]);
    }
    println!(
        "mean ratios, excluding extreme cluster {:?}:\n{}",
        cmp.excluded_cluster,
        t.render()
    );

    println!("per-cluster ITLB-refill ratios (paper: 0.7x for cluster 1, 0.01x for cluster 7):");
    for (c, rs) in &cmp.per_cluster {
        if let Some(r) = rs.iter().find(|r| r.event == pmu::L1I_TLB_REFILL) {
            println!("  cluster {c:>2}: {:.2}x  {:?}", r.ratio, wc.members(*c));
        }
    }

    println!(
        "\n{}",
        paper_vs(
            "BP accuracy HW vs gem5",
            "96% vs 65%",
            &format!(
                "{:.1}% vs {:.1}%",
                cmp.hw_bp_accuracy * 100.0,
                cmp.gem5_bp_accuracy * 100.0
            )
        )
    );
    // The pathological workload.
    let rad = collated
        .slice(Gem5Model::Ex5BigOld, 1.0e9)
        .into_iter()
        .find(|r| r.workload == "par-basicmath-rad2deg");
    if let Some(r) = rad {
        let acc = |pmc: &std::collections::BTreeMap<u16, f64>| {
            1.0 - pmc.get(&pmu::BR_MIS_PRED).copied().unwrap_or(0.0)
                / pmc.get(&pmu::BR_PRED).copied().unwrap_or(1.0)
        };
        println!(
            "{}",
            paper_vs(
                "rad2deg BP accuracy HW vs gem5",
                "99.9% vs 0.86%",
                &format!(
                    "{:.1}% vs {:.1}%",
                    acc(&r.hw_pmc) * 100.0,
                    acc(&r.gem5_pmu) * 100.0
                )
            )
        );
    }
}
