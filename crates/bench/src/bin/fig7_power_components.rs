//! Fig. 7 / §VI — estimated power from HW PMCs vs gem5 events per cluster,
//! with per-component decomposition and energy errors.
//!
//! Paper targets (A15, old model, 45 workloads): power MPE 3.3 % /
//! MAPE 10 %; energy MPE −43.6 % / MAPE 50 %; per-cluster energy MAPE from
//! 0.6 % to 266 %; component errors cancel (e.g. cluster 13: 0x43 9.7× off
//! yet power MAPE 0.7 %).

use gemstone_bench::{a15_old_config, banner, paper_vs, workload_scale};
use gemstone_core::analysis::{hca_workloads, power_energy};
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_core::report::Table;
use gemstone_platform::gem5sim::Gem5Model;
use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
use gemstone_powmon::{dataset, model::PowerModel, selection};
use gemstone_workloads::suites;

fn main() {
    banner(
        "Fig. 7: power & energy from HW PMCs vs gem5 events",
        "§VI, Fig. 7",
    );
    // Validation data (A15, old model).
    let data = run_validation(&a15_old_config());
    let collated = Collated::build(&data);
    let wc = hca_workloads::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, Some(16))
        .expect("clustering");

    // Power model (restricted pool), built on the 65-workload set.
    let board = OdroidXu3::new();
    let specs: Vec<_> = suites::power_suite()
        .iter()
        .map(|w| w.scaled(workload_scale()))
        .collect();
    let ds = dataset::collect(
        &board,
        Cluster::BigA15,
        &specs,
        Cluster::BigA15.frequencies(),
    );
    let opts = selection::SelectionOptions {
        restricted_pool: Some(selection::gem5_compatible_pool()),
        ..selection::SelectionOptions::default()
    };
    let sel = selection::select_events(&ds, &opts).expect("selection");
    let model = PowerModel::fit(&ds, &sel.terms).expect("fit");

    let pe = power_energy::analyse(&collated, &wc, &model, Gem5Model::Ex5BigOld, 1.0e9)
        .expect("power/energy analysis");

    println!(
        "{}",
        paper_vs(
            "A15 power MPE / MAPE",
            "3.3% / 10%",
            &format!(
                "{:+.1}% / {:.1}%",
                pe.overall.power_mpe, pe.overall.power_mape
            )
        )
    );
    println!(
        "{}",
        paper_vs(
            "A15 energy MPE / MAPE",
            "-43.6% / 50.0%",
            &format!(
                "{:+.1}% / {:.1}%",
                pe.overall.energy_mpe, pe.overall.energy_mape
            )
        )
    );

    let mut t = Table::new(vec!["cluster", "members", "power MAPE %", "energy MAPE %"]);
    for (c, e) in &pe.per_cluster {
        t.row(vec![
            c.to_string(),
            wc.members(*c).len().to_string(),
            format!("{:.1}", e.power_mape),
            format!("{:.1}", e.energy_mape),
        ]);
    }
    println!(
        "\nper-cluster errors (paper: energy MAPE ranges 0.6%–266%):\n{}",
        t.render()
    );

    // Component decomposition for one workload, showing cancellation.
    if let Some(w) = pe.workloads.iter().max_by(|a, b| {
        let ea = (a.hw_power_w - a.gem5_power_w).abs() / a.hw_power_w;
        let eb = (b.hw_power_w - b.gem5_power_w).abs() / b.hw_power_w;
        eb.partial_cmp(&ea).expect("finite")
    }) {
        println!(
            "component breakdown — {} (smallest power error):",
            w.workload
        );
        let mut t = Table::new(vec!["component", "HW-PMC est (W)", "gem5 est (W)"]);
        for ((name, hw), (_, g5)) in w.hw_components.iter().zip(&w.gem5_components) {
            t.row(vec![name.clone(), format!("{hw:.3}"), format!("{g5:.3}")]);
        }
        t.row(vec![
            "TOTAL".into(),
            format!("{:.3}", w.hw_power_w),
            format!("{:.3}", w.gem5_power_w),
        ]);
        println!("{}", t.render());
        println!(
            "paper: per-component errors cancel — large individual event errors,\n\
             small total power error."
        );
    }
}
