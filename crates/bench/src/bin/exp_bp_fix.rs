//! E11 — the §VII branch-predictor fix: old vs fixed `ex5_big`.
//!
//! Paper: the fix swings the A15 execution-time MPE from −51 % to +10 %
//! (MAPE 59 % → 18 %) and improves the energy MAPE from 50 % to 18 % —
//! the motivating case for automated model validation.

use gemstone_bench::{banner, paper_vs, workload_scale};
use gemstone_core::analysis::{hca_workloads, improvement};
use gemstone_core::collate::Collated;
use gemstone_core::experiment::{run_validation, ExperimentConfig};
use gemstone_platform::gem5sim::Gem5Model;
use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
use gemstone_powmon::{dataset, model::PowerModel, selection};
use gemstone_workloads::suites;

fn main() {
    banner(
        "E11: the branch-predictor fix (old vs fixed ex5_big)",
        "§VII",
    );
    let cfg = ExperimentConfig {
        workload_scale: workload_scale(),
        clusters: vec![Cluster::BigA15],
        models: vec![Gem5Model::Ex5BigOld, Gem5Model::Ex5BigFixed],
        ..ExperimentConfig::default()
    };
    let data = run_validation(&cfg);
    let collated = Collated::build(&data);
    let wc = hca_workloads::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, Some(16))
        .expect("clustering");

    // Power model for the energy comparison.
    let board = OdroidXu3::new();
    let specs: Vec<_> = suites::power_suite()
        .iter()
        .map(|w| w.scaled(workload_scale()))
        .collect();
    let ds = dataset::collect(
        &board,
        Cluster::BigA15,
        &specs,
        Cluster::BigA15.frequencies(),
    );
    let opts = selection::SelectionOptions {
        restricted_pool: Some(selection::gem5_compatible_pool()),
        ..selection::SelectionOptions::default()
    };
    let sel = selection::select_events(&ds, &opts).expect("selection");
    let pm = PowerModel::fit(&ds, &sel.terms).expect("fit");

    let imp =
        improvement::analyse(&collated, 1.0e9, Some((&pm, &wc))).expect("improvement analysis");

    println!(
        "{}",
        paper_vs(
            "old model time MAPE / MPE",
            "59% / -51%",
            &format!("{:.0}% / {:+.0}%", imp.old.time_mape, imp.old.time_mpe)
        )
    );
    println!(
        "{}",
        paper_vs(
            "fixed model time MAPE / MPE",
            "18% / +10%",
            &format!("{:.0}% / {:+.0}%", imp.fixed.time_mape, imp.fixed.time_mpe)
        )
    );
    if let (Some(oe), Some(fe)) = (imp.old.energy_mape, imp.fixed.energy_mape) {
        println!(
            "{}",
            paper_vs(
                "energy MAPE old → fixed",
                "50% → 18%",
                &format!("{oe:.0}% → {fe:.0}%")
            )
        );
    }
    println!(
        "\nthe same setup on two gem5 versions gives errors of opposite sign —\n\
         \"a researcher would see very different results for their study depending\n\
         on when they downloaded gem5\" (§VII)."
    );
}
