//! Fig. 4 — memory latency measured with an `lat_mem_rd`-style pointer
//! chase at stride 256, hardware vs gem5 model, both clusters.

use gemstone_bench::{banner, paper_vs, workload_scale};
use gemstone_core::analysis::microbench;
use gemstone_core::report::{curve_chart, Table};

fn main() {
    banner("Fig. 4: memory latency (stride 256)", "§IV-A, Fig. 4");
    let accesses = (120_000.0 * workload_scale()) as u64;
    let m = microbench::analyse(1.0e9, accesses.max(5_000));

    let mut t = Table::new(vec!["size", "A15 HW", "ex5_big", "A7 HW", "ex5_LITTLE"]);
    let curves = &m.curves;
    for (i, (size, _)) in curves[0].points.iter().enumerate() {
        t.row(vec![
            if *size >= 1 << 20 {
                format!("{} MiB", size >> 20)
            } else {
                format!("{} KiB", size >> 10)
            },
            format!("{:.1} ns", curves[0].points[i].1),
            format!("{:.1} ns", curves[1].points[i].1),
            format!("{:.1} ns", curves[2].points[i].1),
            format!("{:.1} ns", curves[3].points[i].1),
        ]);
    }
    println!("{}", t.render());

    let chart: Vec<(&str, &[(u64, f64)])> = m
        .curves
        .iter()
        .map(|c| (c.label.as_str(), c.points.as_slice()))
        .collect();
    println!("{}", curve_chart(&chart, 12));

    println!(
        "{}",
        paper_vs(
            "model DRAM latency vs HW (A15)",
            "too low",
            &format!(
                "{:.0} ns vs {:.0} ns",
                curves[1].dram_plateau_ns(),
                curves[0].dram_plateau_ns()
            )
        )
    );
    println!(
        "{}",
        paper_vs(
            "model L2 latency vs HW (A7)",
            "too high",
            &format!(
                "{:.1} ns vs {:.1} ns",
                curves[3].l2_plateau_ns(),
                curves[2].l2_plateau_ns()
            )
        )
    );
}
