//! Ablation study: which of the ex5_big specification errors matters most?
//!
//! Quantifies the paper's §IV-F conclusion ("the most significant source of
//! error was the branch predictor") by fixing each documented error
//! individually (others kept) and by keeping each error individually
//! (others fixed), measuring the execution-time error each way.

use gemstone_bench::{banner, workload_scale};
use gemstone_core::analysis::ablation;
use gemstone_core::report::Table;
use gemstone_platform::board::OdroidXu3;
use gemstone_workloads::suites;

fn main() {
    banner(
        "ablation over ex5_big specification errors",
        "§IV-F (design-space)",
    );
    let board = OdroidXu3::new();
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(workload_scale()))
        .collect();
    let ab = ablation::analyse(&board, &workloads, 1.0e9).expect("ablation");

    let mut t = Table::new(vec!["variant", "MAPE %", "MPE %"]);
    t.row(vec![
        ab.baseline.label.clone(),
        format!("{:.1}", ab.baseline.mape),
        format!("{:+.1}", ab.baseline.mpe),
    ]);
    for v in &ab.fix_one {
        t.row(vec![
            v.label.clone(),
            format!("{:.1}", v.mape),
            format!("{:+.1}", v.mpe),
        ]);
    }
    t.row(vec![
        ab.truth_config.label.clone(),
        format!("{:.1}", ab.truth_config.mape),
        format!("{:+.1}", ab.truth_config.mpe),
    ]);
    println!(
        "fix one error at a time (lower MAPE = bigger contribution):\n{}",
        t.render()
    );

    let mut t = Table::new(vec!["variant", "MAPE %", "MPE %"]);
    for v in &ab.keep_one {
        t.row(vec![
            v.label.clone(),
            format!("{:.1}", v.mape),
            format!("{:+.1}", v.mpe),
        ]);
    }
    println!(
        "keep one error at a time (higher MAPE = bigger contribution):\n{}",
        t.render()
    );

    if let Some(d) = ab.dominant_error() {
        println!(
            "dominant error: {} (MAPE {:.1}% after its fix, vs baseline {:.1}%)\n\
             paper's diagnosis: the branch predictor.",
            d.label, d.mape, ab.baseline.mape
        );
    }
}
