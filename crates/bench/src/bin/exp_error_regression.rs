//! E6 — stepwise error regression (§IV-D of the paper).
//!
//! Paper: seven HW PMC events predict the gem5 execution-time error with
//! R² = 0.97 (best single predictor: PC_WRITE_SPEC total); eight gem5
//! statistics reach R² = 0.99.

use gemstone_bench::{a15_old_config, banner, paper_vs};
use gemstone_core::analysis::error_regression::{analyse, Side};
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_platform::gem5sim::Gem5Model;

fn main() {
    banner("E6: stepwise error regression", "§IV-D");
    let data = run_validation(&a15_old_config());
    let collated = Collated::build(&data);

    let hw = analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, Side::HwPmc).expect("hw regression");
    println!(
        "{}",
        paper_vs(
            "HW-PMC regression R² (terms)",
            "0.97 (7 events)",
            &format!("{:.2} ({} events)", hw.r_squared, hw.selected.len())
        )
    );
    println!("selected, in order of importance:");
    for (i, s) in hw.selected.iter().enumerate() {
        println!("  {}. {s}", i + 1);
    }

    let g5 =
        analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, Side::Gem5Stats).expect("gem5 regression");
    println!(
        "\n{}",
        paper_vs(
            "gem5-statistic regression R² (terms)",
            "0.99 (8 events)",
            &format!("{:.2} ({} events)", g5.r_squared, g5.selected.len())
        )
    );
    println!("selected, in order of importance:");
    for (i, s) in g5.selected.iter().enumerate() {
        println!("  {}. {s}", i + 1);
    }
    println!(
        "\npaper's HW selection includes PC_WRITE_SPEC (best single), SNOOPS,\n\
         L1D_CACHE_REFILL_WR, LDREX_SPEC, BR_RETURN_SPEC; the gem5 selection\n\
         includes commitNonSpecStalls, indirectMisses, dtb.prefetch_faults,\n\
         l2.ReadExReq hits."
    );
}
