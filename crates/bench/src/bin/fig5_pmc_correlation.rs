//! Fig. 5 — correlation of each hardware PMC rate with the execution-time
//! MPE, labelled with HCA event clusters.

use gemstone_bench::{a15_old_config, banner};
use gemstone_core::analysis::pmc_corr;
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_core::report::bar_chart;
use gemstone_platform::gem5sim::Gem5Model;

fn main() {
    banner("Fig. 5: PMC correlation with MPE", "§IV-B, Fig. 5");
    let data = run_validation(&a15_old_config());
    let collated = Collated::build(&data);
    let pc = pmc_corr::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, None).expect("correlations");

    let bars: Vec<(String, f64)> = pc
        .entries
        .iter()
        .map(|e| (format!("[{:>2}] {}", e.cluster_id, e.name), e.correlation))
        .collect();
    println!("{}", bar_chart(&bars, 60));

    println!("\nmost positive (gem5 underestimates time when these are high):");
    for e in pc.top_positive(5) {
        println!(
            "  {:+.2}  {}  (cluster {})",
            e.correlation, e.name, e.cluster_id
        );
    }
    println!("\nmost negative (gem5 overestimates time when these are high):");
    for e in pc.top_negative(5) {
        println!(
            "  {:+.2}  {}  (cluster {})",
            e.correlation, e.name, e.cluster_id
        );
    }
    println!(
        "\npaper: largest positive = memory-barrier/exclusive events (0x6C/0x6D/0x7E);\n\
         largest negative = branch/control-flow events (0x12/0x76/0x78), with\n\
         mispredicts (0x10) negative but smaller in magnitude."
    );
    let branches = pc.correlation_of(gemstone_uarch::pmu::BR_PRED);
    let mispredicts = pc.correlation_of(gemstone_uarch::pmu::BR_MIS_PRED);
    if let (Some(b), Some(m)) = (branches, mispredicts) {
        println!("measured: BR_PRED {b:+.2}, BR_MIS_PRED {m:+.2}");
    }
}
