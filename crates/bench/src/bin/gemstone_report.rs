//! Runs the complete GemStone pipeline end-to-end and prints the combined
//! validation report (the tool's primary user-facing output).

use gemstone_bench::{banner, workload_scale};
use gemstone_core::experiment::ExperimentConfig;
use gemstone_core::pipeline::{GemStone, PipelineOptions};

fn main() {
    banner("full GemStone pipeline", "Fig. 1 / all sections");
    let opts = PipelineOptions {
        experiment: ExperimentConfig {
            workload_scale: workload_scale(),
            ..ExperimentConfig::default()
        },
        with_power: std::env::var("GEMSTONE_NO_POWER").is_err(),
        ..PipelineOptions::default()
    };
    match GemStone::new(opts).run() {
        Ok(report) => println!("{}", report.render()),
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            std::process::exit(1);
        }
    }
}
