//! E8 — empirical power models (§V of the paper).
//!
//! Paper targets: Cortex-A15 restricted model MAPE 3.28 %, SER 0.049 W,
//! adj. R² 0.996, mean VIF 6; Cortex-A7 MAPE 6.64 %, SER 0.014 W, adj. R²
//! 0.992; unrestricted baseline 4 %; published coefficients 5.6 % →
//! retuned 2.8 %.

use gemstone_bench::{banner, paper_vs, workload_scale};
use gemstone_platform::{board::OdroidXu3, dvfs::Cluster};
use gemstone_powmon::{dataset, model::PowerModel, published, selection};
use gemstone_workloads::suites;

fn main() {
    banner("E8: empirical power models", "§V");
    let board = OdroidXu3::new();
    let specs: Vec<_> = suites::power_suite()
        .iter()
        .map(|w| w.scaled(workload_scale()))
        .collect();

    for cluster in [Cluster::BigA15, Cluster::LittleA7] {
        println!("== {} ==", cluster.name());
        let ds = dataset::collect(&board, cluster, &specs, cluster.frequencies());
        println!(
            "{} observations ({} workloads x {} DVFS points)",
            ds.observations.len(),
            specs.len(),
            cluster.frequencies().len()
        );

        // Unrestricted baseline.
        let free = selection::select_events(&ds, &selection::SelectionOptions::default())
            .expect("unrestricted selection");
        let m_free = PowerModel::fit(&ds, &free.terms).expect("fit");
        let q_free = m_free.quality(&ds).expect("quality");

        // gem5-restricted model.
        let opts = selection::SelectionOptions {
            restricted_pool: Some(selection::gem5_compatible_pool()),
            ..selection::SelectionOptions::default()
        };
        let sel = selection::select_events(&ds, &opts).expect("restricted selection");
        let model = PowerModel::fit(&ds, &sel.terms).expect("fit");
        let q = model.quality(&ds).expect("quality");

        let (paper_mape, paper_ser, paper_r2) = match cluster {
            Cluster::BigA15 => ("3.28%", "0.049 W", "0.996"),
            Cluster::LittleA7 => ("6.64%", "0.014 W", "0.992"),
        };
        println!(
            "selected terms: {:?}",
            sel.terms.iter().map(|t| t.mnemonic()).collect::<Vec<_>>()
        );
        println!(
            "{}",
            paper_vs("restricted MAPE", paper_mape, &format!("{:.2}%", q.mape))
        );
        println!(
            "{}",
            paper_vs("restricted SER", paper_ser, &format!("{:.3} W", q.ser))
        );
        println!(
            "{}",
            paper_vs(
                "restricted adj. R²",
                paper_r2,
                &format!("{:.3}", q.adj_r_squared)
            )
        );
        println!(
            "{}",
            paper_vs("mean VIF", "6", &format!("{:.1}", q.mean_vif))
        );
        println!(
            "{}",
            paper_vs(
                "max APE over observations",
                "14%",
                &format!("{:.1}%", q.max_ape)
            )
        );
        println!(
            "{}",
            paper_vs(
                "unrestricted baseline MAPE",
                "4%",
                &format!("{:.2}%", q_free.mape)
            )
        );

        // Published-coefficient experiment (§V).
        let pub_m = published::published_variant(&model, 0.03, 8);
        let q_pub = pub_m.quality(&ds).expect("quality");
        println!(
            "{}",
            paper_vs(
                "published coefficients → retuned",
                "5.6% → 2.8%",
                &format!("{:.2}% → {:.2}%", q_pub.mape, q.mape)
            )
        );
        println!(
            "\npower equations (gem5-insertable):\n{}",
            model.equations()
        );
    }
}
