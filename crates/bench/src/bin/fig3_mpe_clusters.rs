//! Fig. 3 — per-workload execution-time MPE at 1 GHz on the Cortex-A15,
//! ordered and labelled by HCA cluster.

use gemstone_bench::{a15_old_config, banner};
use gemstone_core::analysis::hca_workloads;
use gemstone_core::collate::Collated;
use gemstone_core::experiment::run_validation;
use gemstone_core::report::bar_chart;
use gemstone_platform::gem5sim::Gem5Model;

fn main() {
    banner("Fig. 3: per-workload MPE by HCA cluster", "§IV, Fig. 3");
    let data = run_validation(&a15_old_config());
    let collated = Collated::build(&data);
    let wc = hca_workloads::analyse(&collated, Gem5Model::Ex5BigOld, 1.0e9, Some(16))
        .expect("clustering");

    println!(
        "{} workloads in {} clusters (paper: 45 workloads, ~16 clusters)\n",
        wc.rows.len(),
        wc.k
    );
    let bars: Vec<(String, f64)> = wc
        .rows
        .iter()
        .map(|r| (format!("[{:>2}] {}", r.cluster_id, r.workload), r.mpe))
        .collect();
    println!("{}", bar_chart(&bars, 70));

    println!("cluster mean MPE:");
    for (c, m) in &wc.cluster_mpe {
        println!(
            "  cluster {c:>2}: {m:+.1} %  (members: {:?})",
            wc.members(*c)
        );
    }
    println!(
        "\nwithin-cluster MPE spread {:.1} vs overall {:.1} (same-cluster workloads have similar errors)",
        wc.within_cluster_spread(),
        wc.overall_spread()
    );
    let worst = wc
        .rows
        .iter()
        .min_by(|a, b| a.mpe.partial_cmp(&b.mpe).expect("finite"))
        .expect("rows");
    println!(
        "most extreme workload: {} at {:+.0} % (paper: par-basicmath-rad2deg, -268 % at 1 GHz)",
        worst.workload, worst.mpe
    );
}
