//! The automated model-improvement loop — §IV-F / §VII operationalised:
//! validate → diagnose the dominant error statistically → fix that
//! component → re-validate, until the model is accurate.
//!
//! The paper performs this loop manually ("Adjustments can then be made to
//! the problem component of the gem5 model by the user, and the effects of
//! this change evaluated by re-running the gem5 simulation (GemStone
//! automates this)"); here even the diagnosis step is automated.

use gemstone_bench::{banner, workload_scale};
use gemstone_core::analysis::improve;
use gemstone_core::report::Table;
use gemstone_platform::board::OdroidXu3;
use gemstone_workloads::suites;

fn main() {
    banner("guided model-improvement loop", "§IV-F / §VII");
    let board = OdroidXu3::new();
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(workload_scale()))
        .collect();
    let imp = improve::improve_model(&board, &workloads, 1.0e9, 10.0, 8).expect("improvement loop");

    let mut t = Table::new(vec!["iter", "MAPE %", "MPE %", "diagnosis → fix applied"]);
    for it in &imp.iterations {
        let action = match it.fixed {
            Some(c) => format!(
                "{} ({})",
                c,
                it.diagnosis
                    .evidence
                    .first()
                    .map_or(String::new(), |e| e.statement.clone())
            ),
            None => "stop".to_string(),
        };
        t.row(vec![
            it.index.to_string(),
            format!("{:.1}", it.mape),
            format!("{:+.1}", it.mpe),
            action,
        ]);
    }
    println!("{}", t.render());
    println!(
        "final MAPE {:.1} % after {} iterations (started at {:.1} %)",
        imp.final_mape,
        imp.iterations.len() - 1,
        imp.iterations[0].mape
    );
    println!(
        "\nthe first automatic diagnosis matches the paper's manual conclusion:\n\
         fix the branch predictor before anything else."
    );
}
