//! Shared helpers for the GemStone experiment-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results). All binaries accept the `GEMSTONE_SCALE`
//! environment variable (default `1.0`) to scale workload instruction
//! budgets — useful for quick smoke runs (`GEMSTONE_SCALE=0.05`).

use gemstone_core::experiment::ExperimentConfig;
use gemstone_platform::dvfs::Cluster;
use gemstone_platform::gem5sim::Gem5Model;

/// Reads the workload scale from `GEMSTONE_SCALE` (default 1.0, clamped to
/// a sensible range).
pub fn workload_scale() -> f64 {
    std::env::var("GEMSTONE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.005, 10.0)
}

/// Prints the standard experiment banner.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("GemStone reproduction — {experiment}");
    println!("paper reference: {paper_ref}");
    println!("workload scale:  {}", workload_scale());
    println!("==============================================================\n");
}

/// The A15-only single-frequency configuration used by the Fig. 3/5/6/7
/// binaries (fast: one cluster, one model).
pub fn a15_old_config() -> ExperimentConfig {
    ExperimentConfig {
        workload_scale: workload_scale(),
        clusters: vec![Cluster::BigA15],
        models: vec![Gem5Model::Ex5BigOld],
        ..ExperimentConfig::default()
    }
}

/// The full two-cluster, three-model configuration used by the headline
/// and §VII binaries.
pub fn full_config() -> ExperimentConfig {
    ExperimentConfig {
        workload_scale: workload_scale(),
        ..ExperimentConfig::default()
    }
}

/// Formats a paper-vs-measured comparison row.
pub fn paper_vs(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<42} paper: {paper:<18} measured: {measured}")
}

/// One machine-readable measurement from a benchmark's spot-check pass.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark family, e.g. `"segmented"`.
    pub bench: String,
    /// Configuration label, e.g. `"workers=4"` or `"a15/approx"`.
    pub config: String,
    /// Wall-clock seconds of the measured pass.
    pub wall_s: f64,
    /// Speedup over that benchmark's baseline pass.
    pub speedup: f64,
}

impl BenchRecord {
    /// Builds a record (convenience for the bench binaries).
    pub fn new(bench: &str, config: String, wall_s: f64, speedup: f64) -> Self {
        BenchRecord {
            bench: bench.to_string(),
            config,
            wall_s,
            speedup,
        }
    }
}

/// Writes benchmark records as a JSON array to `path` (one
/// `BENCH_<name>.json` artefact per bench family; CI uploads them). The
/// format is hand-rolled — records only carry simple ASCII labels — so the
/// bench crate needs no serialisation dependency.
pub fn write_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "  {{\"bench\": \"{}\", \"config\": \"{}\", \"wall_s\": {:.6}, \"speedup\": {:.3}}}{sep}\n",
            r.bench.replace('"', "'"),
            r.config.replace('"', "'"),
            r.wall_s,
            r.speedup,
        ));
    }
    out.push_str("]\n");
    std::fs::write(path, out)?;
    println!("wrote {} record(s) to {path}", records.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_and_clamp() {
        // No env var in tests → default.
        std::env::remove_var("GEMSTONE_SCALE");
        assert_eq!(workload_scale(), 1.0);
    }

    #[test]
    fn configs_shape() {
        let a = a15_old_config();
        assert_eq!(a.clusters, vec![Cluster::BigA15]);
        assert_eq!(a.models, vec![Gem5Model::Ex5BigOld]);
        let f = full_config();
        assert_eq!(f.clusters.len(), 2);
        assert_eq!(f.models.len(), 3);
    }

    #[test]
    fn paper_vs_formats() {
        let s = paper_vs("MPE", "-51 %", "-51.6 %");
        assert!(s.contains("paper"));
        assert!(s.contains("measured"));
    }

    #[test]
    fn bench_json_has_one_object_per_record() {
        let file = std::env::temp_dir().join("gemstone-bench-json-test.json");
        let path = file.to_str().unwrap();
        let recs = vec![
            BenchRecord::new("segmented", "workers=2".to_string(), 1.25, 1.9),
            BenchRecord::new("segmented", "workers=4".to_string(), 0.75, 3.2),
        ];
        write_bench_json(path, &recs).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert_eq!(text.matches("\"bench\": \"segmented\"").count(), 2);
        assert!(text.contains("\"config\": \"workers=4\""));
        assert!(text.contains("\"speedup\": 3.200"));
        std::fs::remove_file(file).ok();
    }
}
