//! Shared helpers for the GemStone experiment-reproduction binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results). All binaries accept the `GEMSTONE_SCALE`
//! environment variable (default `1.0`) to scale workload instruction
//! budgets — useful for quick smoke runs (`GEMSTONE_SCALE=0.05`).

use gemstone_core::experiment::ExperimentConfig;
use gemstone_platform::dvfs::Cluster;
use gemstone_platform::gem5sim::Gem5Model;

/// Reads the workload scale from `GEMSTONE_SCALE` (default 1.0, clamped to
/// a sensible range).
pub fn workload_scale() -> f64 {
    std::env::var("GEMSTONE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.005, 10.0)
}

/// Prints the standard experiment banner.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("==============================================================");
    println!("GemStone reproduction — {experiment}");
    println!("paper reference: {paper_ref}");
    println!("workload scale:  {}", workload_scale());
    println!("==============================================================\n");
}

/// The A15-only single-frequency configuration used by the Fig. 3/5/6/7
/// binaries (fast: one cluster, one model).
pub fn a15_old_config() -> ExperimentConfig {
    ExperimentConfig {
        workload_scale: workload_scale(),
        clusters: vec![Cluster::BigA15],
        models: vec![Gem5Model::Ex5BigOld],
        ..ExperimentConfig::default()
    }
}

/// The full two-cluster, three-model configuration used by the headline
/// and §VII binaries.
pub fn full_config() -> ExperimentConfig {
    ExperimentConfig {
        workload_scale: workload_scale(),
        ..ExperimentConfig::default()
    }
}

/// Formats a paper-vs-measured comparison row.
pub fn paper_vs(label: &str, paper: &str, measured: &str) -> String {
    format!("{label:<42} paper: {paper:<18} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_and_clamp() {
        // No env var in tests → default.
        std::env::remove_var("GEMSTONE_SCALE");
        assert_eq!(workload_scale(), 1.0);
    }

    #[test]
    fn configs_shape() {
        let a = a15_old_config();
        assert_eq!(a.clusters, vec![Cluster::BigA15]);
        assert_eq!(a.models, vec![Gem5Model::Ex5BigOld]);
        let f = full_config();
        assert_eq!(f.clusters.len(), 2);
        assert_eq!(f.models.len(), 3);
    }

    #[test]
    fn paper_vs_formats() {
        let s = paper_vs("MPE", "-51 %", "-51.6 %");
        assert!(s.contains("paper"));
        assert!(s.contains("measured"));
    }
}
