//! Property-based tests for the workload generator.

use gemstone_workloads::gen::StreamGen;
use gemstone_workloads::microbench::{bw_mem, lat_mem_rd};
use gemstone_workloads::spec::{
    BranchBehavior, BranchSite, MemPattern, PhaseSpec, Suite, WorkloadSpec,
};
use gemstone_workloads::trace::PackedTrace;
use proptest::prelude::*;

fn arb_mem_pattern() -> impl Strategy<Value = MemPattern> {
    (
        1024u64..(8 << 20),
        4u64..512,
        0.0f64..1.0,
        0.0f64..0.1,
        0.0f64..0.5,
        any::<bool>(),
    )
        .prop_map(|(ws, stride, rnd, unal, shared, dep)| MemPattern {
            ws_bytes: ws,
            stride,
            random_frac: rnd,
            unaligned_frac: unal,
            shared_frac: shared,
            dependent: dep,
        })
}

fn arb_branches() -> impl Strategy<Value = Vec<BranchSite>> {
    prop::collection::vec(
        prop_oneof![
            (0.5f64..1.0).prop_map(|p| BranchBehavior::Biased { taken_prob: p }),
            (0.0f64..1.0).prop_map(|p| BranchBehavior::Random { taken_prob: p }),
            (1u32..256, 2u8..16).prop_map(|(bits, len)| BranchBehavior::Pattern { bits, len }),
            (2u16..128).prop_map(|body| BranchBehavior::Loop { body }),
        ]
        .prop_flat_map(|behavior| {
            (0.05f64..1.0).prop_map(move |weight| BranchSite { behavior, weight })
        }),
        1..4,
    )
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        arb_mem_pattern(),
        arb_branches(),
        1u32..80,
        2_000u64..20_000,
        prop_oneof![Just(1u32), Just(4u32)],
        any::<u64>(),
    )
        .prop_map(|(mem, branches, code_pages, instructions, threads, seed)| {
            WorkloadSpec::builder("prop-wl", Suite::MiBench)
                .threads(threads)
                .instructions(instructions)
                .seed(seed)
                .tweak(|p: &mut PhaseSpec| {
                    p.mem = mem;
                    p.branches = branches;
                    p.code_pages = code_pages;
                })
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_is_deterministic_and_exact(spec in arb_spec()) {
        let a: Vec<_> = StreamGen::new(&spec).collect();
        let b: Vec<_> = StreamGen::new(&spec).collect();
        prop_assert_eq!(&a, &b);
        // Exact count, possibly ± the trailing half of an exclusive pair.
        prop_assert!(a.len() as u64 >= spec.instructions);
        prop_assert!(a.len() as u64 <= spec.instructions + 1);
    }

    #[test]
    fn size_hint_stays_exact(spec in arb_spec()) {
        let mut gen = StreamGen::new(&spec);
        let mut expected = gen.len();
        while gen.next().is_some() {
            expected -= 1;
            prop_assert_eq!(gen.size_hint(), (expected, Some(expected)));
        }
        prop_assert_eq!(expected, 0);
    }

    #[test]
    fn packed_trace_round_trips_exactly(spec in arb_spec()) {
        let generated: Vec<_> = StreamGen::new(&spec).collect();
        let trace = PackedTrace::from_spec(&spec);
        prop_assert_eq!(trace.len(), generated.len());
        let replayed: Vec<_> = trace.iter().collect();
        prop_assert_eq!(replayed, generated);
    }

    #[test]
    fn addresses_stay_in_bounds(spec in arb_spec()) {
        let code_lo = 0x100u64; // CODE_BASE_PAGE
        let code_hi = code_lo + u64::from(spec.phases[0].code_pages.max(1));
        for i in StreamGen::new(&spec) {
            prop_assert!((code_lo..code_hi).contains(&i.page()),
                "pc page {:#x} outside [{:#x},{:#x})", i.page(), code_lo, code_hi);
            if let Some(m) = i.mem {
                // Data addresses live in the data segment, within ws (+ one
                // unaligned spill-over line).
                prop_assert!(m.vaddr >= (1 << 30));
                prop_assert!(m.vaddr < (1 << 30) + spec.phases[0].mem.ws_bytes + 4096);
            }
        }
    }

    #[test]
    fn branch_metadata_is_consistent(spec in arb_spec()) {
        for i in StreamGen::new(&spec) {
            if i.class.is_branch() {
                prop_assert!(i.branch.is_some());
                prop_assert!(i.mem.is_none());
            } else if i.class.is_memory() {
                prop_assert!(i.mem.is_some());
                prop_assert!(i.branch.is_none());
            } else {
                prop_assert!(i.mem.is_none() && i.branch.is_none());
            }
        }
    }

    #[test]
    fn seed_changes_stream(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        prop_assume!(seed_a != seed_b);
        let mk = |seed| {
            WorkloadSpec::builder("seeded", Suite::MiBench)
                .instructions(3_000)
                .seed(seed)
                .build()
        };
        let a: Vec<_> = StreamGen::new(&mk(seed_a)).collect();
        let b: Vec<_> = StreamGen::new(&mk(seed_b)).collect();
        prop_assert_ne!(a, b);
    }

    #[test]
    fn lat_mem_rd_stays_in_array(size_pow in 12u32..24, stride in 8u64..1024, n in 10u64..500) {
        let size = 1u64 << size_pow;
        let stream = lat_mem_rd(size, stride, n);
        prop_assert_eq!(stream.len() as u64, n * 2);
        for i in stream.iter().step_by(2) {
            let m = i.mem.unwrap();
            prop_assert!(m.vaddr >= (1 << 31) && m.vaddr < (1 << 31) + size);
            prop_assert!(m.dependent);
        }
    }

    #[test]
    fn bw_mem_direction(write in any::<bool>(), n in 1u64..300) {
        let s = bw_mem(1 << 20, write, n);
        prop_assert_eq!(s.len() as u64, n);
        prop_assert!(s.iter().all(|i| i.mem.unwrap().is_store == write));
    }
}
