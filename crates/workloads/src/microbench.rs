//! `lmbench`-style micro-benchmarks.
//!
//! The paper's Fig. 4 measures memory-hierarchy latency with `lat_mem_rd`
//! at a stride of 256 bytes: a serial pointer chase over an array of a
//! given size, so each load's latency is fully exposed. Sweeping the array
//! size walks the curve through the L1, L2 and DRAM plateaus — on hardware
//! and on the model — revealing the model's low DRAM latency and (for the
//! A7 model) the too-high L2 latency.
//!
//! # Examples
//!
//! ```
//! use gemstone_workloads::microbench::lat_mem_rd;
//!
//! let stream = lat_mem_rd(64 * 1024, 256, 1_000);
//! // One dependent load and one loop branch per access.
//! assert_eq!(stream.len(), 2_000);
//! ```

use gemstone_uarch::instr::{BranchRef, Instr, InstrClass, MemRef};

/// Base address of the chased array.
const ARRAY_BASE: u64 = 1 << 31;
/// PC of the two-instruction chase loop.
const LOOP_PC: u64 = 0x20_0000;

/// Generates the `lat_mem_rd` instruction stream: `accesses` serially
/// dependent loads striding through `size_bytes` of memory, each followed
/// by the loop back-edge branch.
///
/// # Panics
///
/// Panics if `size_bytes == 0` or `stride == 0`.
pub fn lat_mem_rd(size_bytes: u64, stride: u64, accesses: u64) -> Vec<Instr> {
    assert!(size_bytes > 0, "array size must be positive");
    assert!(stride > 0, "stride must be positive");
    let mut out = Vec::with_capacity(accesses as usize * 2);
    let mut offset = 0u64;
    for i in 0..accesses {
        out.push(Instr::mem(
            InstrClass::Load,
            LOOP_PC,
            MemRef::load(ARRAY_BASE + offset, 4).with_dependent(true),
        ));
        offset = (offset + stride) % size_bytes;
        out.push(Instr::branch(
            InstrClass::Branch,
            LOOP_PC + 4,
            BranchRef {
                static_id: 0x4D45_u32, // 'ME'
                taken: i + 1 < accesses,
                target_page: LOOP_PC >> 12,
            },
        ));
    }
    out
}

/// The array sizes (bytes) swept by the Fig. 4 experiment: 4 KiB – 32 MiB,
/// doubling.
pub fn fig4_sizes() -> Vec<u64> {
    (12..=25).map(|p| 1u64 << p).collect()
}

/// A `bw_mem`-style bandwidth stream: independent strided loads (or
/// stores) over `size_bytes`.
pub fn bw_mem(size_bytes: u64, write: bool, accesses: u64) -> Vec<Instr> {
    assert!(size_bytes > 0, "array size must be positive");
    let mut out = Vec::with_capacity(accesses as usize);
    let mut offset = 0u64;
    for _ in 0..accesses {
        let m = if write {
            MemRef::store(ARRAY_BASE + offset, 4)
        } else {
            MemRef::load(ARRAY_BASE + offset, 4)
        };
        out.push(Instr::mem(
            if write {
                InstrClass::Store
            } else {
                InstrClass::Load
            },
            LOOP_PC,
            m,
        ));
        offset = (offset + 64) % size_bytes;
    }
    out
}

/// An operation-latency micro-benchmark (`lat_ops` style): a serial chain
/// of `count` operations of one class, bracketed by loop branches. The
/// measured cycles-per-op exposes the configured operation latencies —
/// the paper's "operation latency" checks alongside Fig. 4.
///
/// # Panics
///
/// Panics when `class` is a memory or branch class (use [`lat_mem_rd`] /
/// the branch benchmarks for those).
pub fn op_latency(class: InstrClass, count: u64) -> Vec<Instr> {
    assert!(
        !class.is_memory() && !class.is_branch(),
        "op_latency covers ALU-class operations only"
    );
    let mut out = Vec::with_capacity(count as usize + count as usize / 64);
    for i in 0..count {
        out.push(Instr::alu(class, LOOP_PC + (i % 16) * 4));
        if i % 64 == 63 {
            out.push(Instr::branch(
                InstrClass::Branch,
                LOOP_PC + 64,
                BranchRef {
                    static_id: 0x4F50, // 'OP'
                    taken: i + 1 < count,
                    target_page: LOOP_PC >> 12,
                },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemstone_uarch::configs::{cortex_a15_hw, cortex_a7_hw, ex5_big, Ex5Variant};
    use gemstone_uarch::core::Engine;

    /// Measured ns per access for a given array size on a config.
    fn latency_ns(cfg: gemstone_uarch::core::CoreConfig, size: u64) -> f64 {
        let stream = lat_mem_rd(size, 256, 40_000);
        let n = stream.len() as f64 / 2.0;
        let mut e = Engine::new(cfg, 1.0e9, 1);
        let r = e.run(stream.into_iter());
        r.seconds * 1e9 / n
    }

    #[test]
    fn latency_curve_has_plateaus() {
        // L1-resident (16 KiB) ≪ L2-resident (256 KiB) ≪ DRAM (32 MiB).
        let l1 = latency_ns(cortex_a15_hw(), 16 * 1024);
        let l2 = latency_ns(cortex_a15_hw(), 256 * 1024);
        let dram = latency_ns(cortex_a15_hw(), 32 * 1024 * 1024);
        assert!(l1 < l2, "l1 {l1} l2 {l2}");
        assert!(l2 < dram, "l2 {l2} dram {dram}");
        // The DRAM plateau reflects the ~100 ns configured latency.
        assert!(dram > 60.0 && dram < 200.0, "dram plateau {dram}");
    }

    #[test]
    fn model_dram_latency_lower_than_hw() {
        let hw = latency_ns(cortex_a15_hw(), 32 * 1024 * 1024);
        let model = latency_ns(ex5_big(Ex5Variant::Fixed), 32 * 1024 * 1024);
        assert!(
            model < hw * 0.85,
            "model {model} should be well below hw {hw}"
        );
    }

    #[test]
    fn stream_shape() {
        let s = lat_mem_rd(4096, 256, 10);
        assert_eq!(s.len(), 20);
        // Loads all dependent and within the array.
        for i in s.iter().step_by(2) {
            let m = i.mem.expect("load");
            assert!(m.dependent);
            assert!(m.vaddr >= ARRAY_BASE && m.vaddr < ARRAY_BASE + 4096);
        }
        // Final branch falls through (loop exit).
        assert!(!s.last().unwrap().branch.unwrap().taken);
    }

    #[test]
    fn fig4_size_sweep() {
        let sizes = fig4_sizes();
        assert_eq!(sizes.first(), Some(&4096));
        assert_eq!(sizes.last(), Some(&(32 * 1024 * 1024)));
        for w in sizes.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn op_latency_orders_operation_classes() {
        // Divides cost more than multiplies cost more than adds, on both
        // core types; and the little core pays more for everything.
        let cycles_per_op = |cfg: gemstone_uarch::core::CoreConfig, class: InstrClass| {
            let stream = op_latency(class, 20_000);
            let mut e = Engine::new(cfg, 1.0e9, 1);
            let r = e.run(stream.into_iter());
            r.cycles / 20_000.0
        };
        for cfg in [cortex_a15_hw(), cortex_a7_hw()] {
            let add = cycles_per_op(cfg.clone(), InstrClass::IntAlu);
            let mul = cycles_per_op(cfg.clone(), InstrClass::IntMul);
            let div = cycles_per_op(cfg.clone(), InstrClass::IntDiv);
            let fdiv = cycles_per_op(cfg.clone(), InstrClass::FpDiv);
            assert!(add < mul && mul < div, "{}: {add} {mul} {div}", cfg.name);
            assert!(fdiv > div, "{}: fdiv {fdiv} vs div {div}", cfg.name);
        }
        let a15 = cycles_per_op(cortex_a15_hw(), InstrClass::IntDiv);
        let a7 = cycles_per_op(cortex_a7_hw(), InstrClass::IntDiv);
        assert!(a7 > a15, "A7 divide {a7} vs A15 {a15}");
    }

    #[test]
    #[should_panic(expected = "ALU-class")]
    fn op_latency_rejects_memory_classes() {
        op_latency(InstrClass::Load, 10);
    }

    #[test]
    fn bw_mem_generates_streaming() {
        let s = bw_mem(1 << 20, true, 100);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|i| i.mem.unwrap().is_store));
        let s = bw_mem(1 << 20, false, 100);
        assert!(s.iter().all(|i| !i.mem.unwrap().is_store));
    }
}
