//! Packed instruction traces and the process-wide trace cache.
//!
//! A workload's instruction stream depends only on its [`WorkloadSpec`] —
//! not on the core configuration or DVFS point — yet the simulation grid
//! replays every workload for each (config, frequency) tuple. Regenerating
//! the stream through [`StreamGen`] costs per-instruction RNG draws and CDF
//! sampling each time; this module amortises that by materialising the
//! stream **once** into a compact structure-of-arrays encoding
//! ([`PackedTrace`], ~16 B/instruction on the standard mixes) and replaying
//! it for every tuple.
//!
//! The [`TraceCache`] is sharded like the platform's `SimCache`: worker
//! threads share `Arc`'d traces, each spec fingerprint is generated exactly
//! once (concurrent requesters block on the winner), and total resident
//! bytes are bounded by a budget with least-recently-used eviction. The
//! budget of the process-wide instance comes from the
//! `GEMSTONE_TRACE_BYTES` environment variable (default 512 MiB; `0`
//! disables the cache so callers fall back to direct generation).
//!
//! **Determinism contract:** decoding a packed trace yields a stream that
//! is bit-identical to the [`StreamGen`] output it was encoded from —
//! every field of every [`Instr`], in order. Replay therefore produces
//! bit-identical engine results whether the trace cache is cold, warm, or
//! disabled.
//!
//! # Examples
//!
//! ```
//! use gemstone_workloads::gen::StreamGen;
//! use gemstone_workloads::spec::{Suite, WorkloadSpec};
//! use gemstone_workloads::trace::PackedTrace;
//!
//! let spec = WorkloadSpec::builder("demo", Suite::MiBench)
//!     .instructions(5_000)
//!     .build();
//! let trace = PackedTrace::from_spec(&spec);
//! assert_eq!(trace.len(), 5_000);
//! let replayed: Vec<_> = trace.iter().collect();
//! let generated: Vec<_> = StreamGen::new(&spec).collect();
//! assert_eq!(replayed, generated);
//! ```

use crate::gen::StreamGen;
use crate::spec::WorkloadSpec;
use gemstone_obs::registry::log2_time_bounds;
use gemstone_obs::{Counter, Histogram, Registry};
use gemstone_uarch::backend::{record_tier_run, Backend, ExecBackend, Fidelity};
use gemstone_uarch::core::SimResult;
use gemstone_uarch::grid::{grid_span_name, record_grid_run, GridBackend};
use gemstone_uarch::instr::{BranchRef, Instr, InstrClass, MemRef};
use gemstone_uarch::segment::{segment_instrs, segment_workers, SegmentPlan, TokenPool};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of independent shards (power of two).
const SHARD_COUNT: usize = 16;

/// Environment variable overriding the process-wide trace-cache byte
/// budget. `0` disables trace caching entirely.
pub const TRACE_BYTES_ENV: &str = "GEMSTONE_TRACE_BYTES";

/// Default byte budget of the process-wide trace cache (512 MiB).
pub const DEFAULT_TRACE_BYTES: usize = 512 << 20;

/// Instructions between payload-index entries. Seeking to an arbitrary
/// offset scans at most this many class bytes, so sampling windows can
/// start replays anywhere without re-decoding the prefix.
const INDEX_STRIDE: usize = 4096;

const MEM_UNALIGNED: u8 = 1 << 0;
const MEM_STORE: u8 = 1 << 1;
const MEM_SHARED: u8 = 1 << 2;
const MEM_DEPENDENT: u8 = 1 << 3;

/// Compact [`MemRef`] column entry (10 bytes packed).
#[derive(Debug, Clone, Copy)]
struct PackedMem {
    vaddr: u64,
    size: u8,
    flags: u8,
}

impl PackedMem {
    fn pack(m: &MemRef) -> Self {
        PackedMem {
            vaddr: m.vaddr,
            size: m.size,
            flags: ((m.unaligned as u8) * MEM_UNALIGNED)
                | ((m.is_store as u8) * MEM_STORE)
                | ((m.shared as u8) * MEM_SHARED)
                | ((m.dependent as u8) * MEM_DEPENDENT),
        }
    }

    #[inline]
    fn unpack(self) -> MemRef {
        MemRef {
            vaddr: self.vaddr,
            size: self.size,
            unaligned: self.flags & MEM_UNALIGNED != 0,
            is_store: self.flags & MEM_STORE != 0,
            shared: self.flags & MEM_SHARED != 0,
            dependent: self.flags & MEM_DEPENDENT != 0,
        }
    }
}

/// Compact [`BranchRef`] column entry (13 bytes packed).
#[derive(Debug, Clone, Copy)]
struct PackedBranch {
    target_page: u64,
    static_id: u32,
    taken: bool,
}

impl PackedBranch {
    fn pack(b: &BranchRef) -> Self {
        PackedBranch {
            target_page: b.target_page,
            static_id: b.static_id,
            taken: b.taken,
        }
    }

    #[inline]
    fn unpack(self) -> BranchRef {
        BranchRef {
            static_id: self.static_id,
            taken: self.taken,
            target_page: self.target_page,
        }
    }
}

/// A fixed-width, structure-of-arrays encoding of an instruction stream.
///
/// Per instruction: one class byte and one 8-byte PC; memory and branch
/// payloads are stored in side columns in stream order and re-attached on
/// decode by the class predicates (`is_memory()` / `is_branch()`), which is
/// why encoding asserts that payload presence matches the class.
pub struct PackedTrace {
    classes: Vec<u8>,
    pcs: Vec<u64>,
    mems: Vec<PackedMem>,
    branches: Vec<PackedBranch>,
    /// Sparse seek index: entry `k` holds the cumulative payload-column
    /// offsets at instruction `k * INDEX_STRIDE`.
    index: Vec<PayloadOffsets>,
}

/// Cumulative payload-column offsets at one indexed instruction boundary.
#[derive(Debug, Clone, Copy)]
struct PayloadOffsets {
    mem: u64,
    branch: u64,
}

impl PackedTrace {
    /// Encodes a stream. Preallocates from the iterator's `size_hint`
    /// (exact for [`StreamGen`]).
    ///
    /// # Panics
    ///
    /// Panics if an instruction carries a memory payload without a memory
    /// class (or vice versa), or a branch payload without a branch class —
    /// such a stream could not be decoded bit-identically.
    pub fn encode(stream: impl Iterator<Item = Instr>) -> Self {
        let (lo, hi) = stream.size_hint();
        let n = hi.unwrap_or(lo);
        let mut trace = PackedTrace {
            classes: Vec::with_capacity(n),
            pcs: Vec::with_capacity(n),
            mems: Vec::new(),
            branches: Vec::new(),
            index: Vec::with_capacity(n / INDEX_STRIDE + 1),
        };
        for instr in stream {
            if trace.classes.len().is_multiple_of(INDEX_STRIDE) {
                trace.index.push(PayloadOffsets {
                    mem: trace.mems.len() as u64,
                    branch: trace.branches.len() as u64,
                });
            }
            assert_eq!(
                instr.mem.is_some(),
                instr.class.is_memory(),
                "memory payload must match a memory class for lossless packing"
            );
            assert_eq!(
                instr.branch.is_some(),
                instr.class.is_branch(),
                "branch payload must match a branch class for lossless packing"
            );
            trace.classes.push(instr.class.index());
            trace.pcs.push(instr.pc);
            if let Some(m) = &instr.mem {
                trace.mems.push(PackedMem::pack(m));
            }
            if let Some(b) = &instr.branch {
                trace.branches.push(PackedBranch::pack(b));
            }
        }
        // The payload columns grew by doubling; traces are encoded once and
        // then live in the cache, so trade one realloc for a tight footprint
        // (bytes() accounts capacity against the cache budget).
        trace.mems.shrink_to_fit();
        trace.branches.shrink_to_fit();
        trace.index.shrink_to_fit();
        trace
    }

    /// Generates and encodes the full stream of a workload specification.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        Self::encode(StreamGen::new(spec))
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the trace holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Resident heap footprint in bytes (what the [`TraceCache`] budget
    /// accounts).
    pub fn bytes(&self) -> usize {
        self.classes.capacity() * std::mem::size_of::<u8>()
            + self.pcs.capacity() * std::mem::size_of::<u64>()
            + self.mems.capacity() * std::mem::size_of::<PackedMem>()
            + self.branches.capacity() * std::mem::size_of::<PackedBranch>()
            + self.index.capacity() * std::mem::size_of::<PayloadOffsets>()
            + std::mem::size_of::<Self>()
    }

    /// Decoding iterator over the trace; yields the exact stream the trace
    /// was encoded from.
    pub fn iter(&self) -> Replay<'_> {
        Replay {
            trace: self,
            idx: 0,
            mem_idx: 0,
            branch_idx: 0,
        }
    }

    /// Decoding iterator starting at instruction `offset` (clamped to the
    /// trace length) without decoding the prefix: the sparse payload index
    /// positions the seek within [`INDEX_STRIDE`] instructions and only
    /// class bytes — never payloads — are scanned from there.
    pub fn iter_from(&self, offset: usize) -> Replay<'_> {
        let offset = offset.min(self.len());
        let entry = (offset / INDEX_STRIDE).min(self.index.len().saturating_sub(1));
        let (mut idx, mut mem_idx, mut branch_idx) = match self.index.get(entry) {
            Some(e) => (entry * INDEX_STRIDE, e.mem as usize, e.branch as usize),
            None => (0, 0, 0), // empty trace: offset is already 0
        };
        while idx < offset {
            let class =
                InstrClass::from_index(self.classes[idx]).expect("trace holds valid class indices");
            mem_idx += class.is_memory() as usize;
            branch_idx += class.is_branch() as usize;
            idx += 1;
        }
        Replay {
            trace: self,
            idx,
            mem_idx,
            branch_idx,
        }
    }

    /// Per-class instruction counts over `range` (end clamped to the trace
    /// length), indexed by [`InstrClass::index`]. Reads only the class
    /// column, so counting costs one byte per instruction — this is what
    /// the atomic tier and sampled fast-forward phases consume.
    pub fn class_histogram(&self, range: Range<usize>) -> [u64; InstrClass::COUNT] {
        let end = range.end.min(self.len());
        let start = range.start.min(end);
        let mut hist = [0u64; InstrClass::COUNT];
        for &class in &self.classes[start..end] {
            hist[class as usize] += 1;
        }
        hist
    }

    /// Replays the whole trace through a tier [`Backend`], taking the
    /// fastest path each tier admits: the atomic tier absorbs one class
    /// histogram and never decodes an instruction, while the approximate
    /// and sampled tiers replay every decoded instruction — the sampled
    /// tier needs real addresses even in fast-forward phases to
    /// functionally warm caches, TLBs and the branch predictor. When the
    /// trace spans multiple segments and `GEMSTONE_SEGMENTS` admits it,
    /// the detailed tiers run time-parallel segments (warm once, simulate
    /// concurrently, splice — `gemstone_uarch::segment`), borrowing
    /// whatever [`TokenPool`] permits the sweep scheduler has left free.
    /// Results are bit-identical to [`Backend::run_stream`] over
    /// [`PackedTrace::iter`] either way, and the same per-tier span and
    /// `engine.tier.*` counters are recorded.
    pub fn run_backend(&self, backend: &mut Backend) -> SimResult {
        match backend {
            Backend::Approx(_) | Backend::Sampled(_) => {
                let cap = segment_workers();
                let plan = backend.segment_plan(self.len() as u64);
                if cap <= 1 || plan.segment_count() <= 1 {
                    return backend.run_stream(self.iter());
                }
                // One implicit permit for the calling worker, plus however
                // many of the pool's spares this run can grab.
                let permits = TokenPool::global().take_up_to(cap - 1);
                backend.run_segmented(&plan, 1 + permits.count(), |offset| {
                    self.iter_from(offset as usize)
                })
            }
            Backend::Atomic(engine) => {
                let _span = gemstone_obs::span::span(Fidelity::Atomic.span_name());
                engine.absorb_histogram(&self.class_histogram(0..self.len()));
                let result = engine.finish();
                record_tier_run(Fidelity::Atomic, result.stats.committed_instructions);
                result
            }
        }
    }

    /// Replays the whole trace through a fused [`GridBackend`] — one
    /// decode pass serving every frequency lane — with the same per-tier
    /// fast paths as [`PackedTrace::run_backend`]: the atomic grid absorbs
    /// one class histogram, the approx and sampled grids replay every
    /// decoded instruction, and the approx grid additionally runs
    /// time-parallel segments when the trace and the [`TokenPool`] admit
    /// it, so segments × frequency lanes multiply. Each returned result is
    /// bit-identical to [`PackedTrace::run_backend`] at that lane's
    /// frequency, and the `engine.grid.*` / `engine.tier.*` counters
    /// account the replay as one fused pass standing in for N logical
    /// runs.
    pub fn run_grid(&self, backend: &mut GridBackend) -> Vec<SimResult> {
        match backend {
            GridBackend::Approx(_) | GridBackend::Sampled(_) => {
                let cap = segment_workers();
                let plan = SegmentPlan::new(self.len() as u64, segment_instrs());
                if cap <= 1 || plan.segment_count() <= 1 {
                    return backend.run_stream(self.iter());
                }
                let permits = TokenPool::global().take_up_to(cap - 1);
                backend.run_segmented(&plan, 1 + permits.count(), |offset| {
                    self.iter_from(offset as usize)
                })
            }
            GridBackend::Atomic(engine) => {
                let _span = gemstone_obs::span::span(grid_span_name(Fidelity::Atomic));
                engine.absorb_histogram(&self.class_histogram(0..self.len()));
                let results = engine.finish();
                record_grid_run(
                    Fidelity::Atomic,
                    results.len(),
                    results[0].stats.committed_instructions,
                );
                results
            }
        }
    }
}

impl fmt::Debug for PackedTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PackedTrace")
            .field("instructions", &self.len())
            .field("bytes", &self.bytes())
            .finish()
    }
}

impl<'a> IntoIterator for &'a PackedTrace {
    type Item = Instr;
    type IntoIter = Replay<'a>;

    fn into_iter(self) -> Replay<'a> {
        self.iter()
    }
}

/// Decoding iterator over a [`PackedTrace`].
#[derive(Debug, Clone)]
pub struct Replay<'a> {
    trace: &'a PackedTrace,
    idx: usize,
    mem_idx: usize,
    branch_idx: usize,
}

impl Iterator for Replay<'_> {
    type Item = Instr;

    #[inline]
    fn next(&mut self) -> Option<Instr> {
        let class_idx = *self.trace.classes.get(self.idx)?;
        let class = InstrClass::from_index(class_idx).expect("trace holds valid class indices");
        let pc = self.trace.pcs[self.idx];
        self.idx += 1;
        let mem = if class.is_memory() {
            let m = self.trace.mems[self.mem_idx].unpack();
            self.mem_idx += 1;
            Some(m)
        } else {
            None
        };
        let branch = if class.is_branch() {
            let b = self.trace.branches[self.branch_idx].unpack();
            self.branch_idx += 1;
            Some(b)
        } else {
            None
        };
        Some(Instr {
            class,
            pc,
            mem,
            branch,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.trace.len() - self.idx;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Replay<'_> {}

/// A 128-bit fingerprint of one workload specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    hi: u64,
    lo: u64,
}

/// One cache entry; the [`OnceLock`] serialises concurrent fills so every
/// spec is generated exactly once.
#[derive(Default)]
struct Slot {
    cell: OnceLock<Arc<PackedTrace>>,
    last_used: AtomicU64,
}

/// A shared, concurrent, byte-budgeted memo of packed traces.
///
/// Cheap to share via [`Arc`]; see [`TraceCache::global`] for the
/// process-wide instance used by default.
pub struct TraceCache {
    shards: Vec<RwLock<HashMap<TraceKey, Arc<Slot>>>>,
    budget: usize,
    bytes: AtomicUsize,
    clock: AtomicU64,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    lookup_seconds: Arc<Histogram>,
}

/// A consistent view of one trace cache's counters, read as a tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheSnapshot {
    /// Lookups served from the memo.
    pub hits: u64,
    /// Lookups that generated a trace.
    pub misses: u64,
    /// Traces evicted to stay within the byte budget.
    pub evictions: u64,
    /// Resident trace bytes at snapshot time.
    pub bytes: usize,
    /// Resident traces at snapshot time.
    pub entries: usize,
}

static GLOBAL: OnceLock<Arc<TraceCache>> = OnceLock::new();

impl TraceCache {
    /// Creates an empty cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_TRACE_BYTES)
    }

    /// Creates an empty cache bounded to `budget` resident bytes. A budget
    /// of `0` disables the cache: [`TraceCache::get`] always returns `None`
    /// and callers generate streams directly.
    ///
    /// The budget bounds the *steady state*: a single trace larger than the
    /// whole budget is still returned to its requester (and evicted as soon
    /// as a later fill needs the room).
    pub fn with_budget(budget: usize) -> Self {
        TraceCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            budget,
            bytes: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            // Detached handles: per-instance caches (tests, benches) keep
            // isolated counts; only `global()` registers the canonical
            // `trace_cache.*` names.
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
            lookup_seconds: Arc::new(Histogram::with_bounds(log2_time_bounds())),
        }
    }

    /// The process-wide shared cache, budgeted from the
    /// `GEMSTONE_TRACE_BYTES` environment variable (bytes; default 512 MiB,
    /// `0` disables). A malformed value produces a one-time stderr warning
    /// and falls back to the default instead of being silently ignored.
    pub fn global() -> Arc<TraceCache> {
        GLOBAL
            .get_or_init(|| {
                let budget = gemstone_obs::env::parse::<usize>(
                    TRACE_BYTES_ENV,
                    "a byte count (0 disables the cache)",
                    "the default of 512 MiB",
                )
                .unwrap_or(DEFAULT_TRACE_BYTES);
                let mut cache = TraceCache::with_budget(budget);
                let registry = Registry::global();
                cache.hits = registry.counter("trace_cache.hits");
                cache.misses = registry.counter("trace_cache.misses");
                cache.evictions = registry.counter("trace_cache.evictions");
                cache.lookup_seconds =
                    registry.histogram("trace_cache.lookup.seconds", log2_time_bounds());
                Arc::new(cache)
            })
            .clone()
    }

    /// Fingerprints one workload specification (every field, via its
    /// canonical debug rendering, plus the derived seed).
    pub fn fingerprint(spec: &WorkloadSpec) -> TraceKey {
        use std::hash::{Hash, Hasher};
        let repr = format!("{spec:?}\u{1f}{}", spec.derived_seed());
        let mut sip = std::collections::hash_map::DefaultHasher::new();
        repr.hash(&mut sip);
        TraceKey {
            hi: fnv1a(repr.as_bytes()),
            lo: sip.finish(),
        }
    }

    /// Returns the packed trace for `spec`, generating it exactly once per
    /// fingerprint; concurrent requesters for the same spec block on the
    /// winning generation instead of duplicating it. Returns `None` when
    /// the cache is disabled (budget 0) — callers then fall back to
    /// [`StreamGen`].
    pub fn get(&self, spec: &WorkloadSpec) -> Option<Arc<PackedTrace>> {
        if self.budget == 0 {
            return None;
        }
        // Lookup latency covers fingerprinting plus the shard probe —
        // not trace generation, which a miss pays inside the `OnceLock`.
        let lookup_start = std::time::Instant::now();
        let key = Self::fingerprint(spec);
        let shard = &self.shards[(key.hi as usize) & (SHARD_COUNT - 1)];
        let slot = {
            let map = shard.read();
            map.get(&key).cloned()
        };
        let slot = match slot {
            Some(slot) => slot,
            None => shard.write().entry(key).or_default().clone(),
        };
        self.lookup_seconds
            .observe(lookup_start.elapsed().as_secs_f64());
        slot.last_used.store(
            self.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        let mut computed = false;
        let trace = slot
            .cell
            .get_or_init(|| {
                computed = true;
                Arc::new(PackedTrace::from_spec(spec))
            })
            .clone();
        if computed {
            self.misses.inc();
            self.bytes.fetch_add(trace.bytes(), Ordering::Relaxed);
            self.evict_over_budget(key);
        } else {
            self.hits.inc();
        }
        Some(trace)
    }

    /// Evicts least-recently-used filled entries (never `protect`, which
    /// the caller just inserted) until resident bytes fit the budget.
    /// In-flight replays keep their `Arc`'d traces alive regardless.
    fn evict_over_budget(&self, protect: TraceKey) {
        while self.bytes.load(Ordering::Relaxed) > self.budget {
            let mut victim: Option<(usize, TraceKey, u64)> = None;
            for (si, shard) in self.shards.iter().enumerate() {
                let map = shard.read();
                for (key, slot) in map.iter() {
                    if *key == protect || slot.cell.get().is_none() {
                        continue;
                    }
                    let used = slot.last_used.load(Ordering::Relaxed);
                    if victim.is_none_or(|(_, _, best)| used < best) {
                        victim = Some((si, *key, used));
                    }
                }
            }
            let Some((si, key, _)) = victim else {
                break; // nothing evictable: only the protected entry remains
            };
            if let Some(slot) = self.shards[si].write().remove(&key) {
                if let Some(trace) = slot.cell.get() {
                    self.bytes.fetch_sub(trace.bytes(), Ordering::Relaxed);
                    self.evictions.inc();
                }
            }
        }
    }

    /// Number of lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of lookups that generated a trace (= fills).
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Number of traces evicted to stay within the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Reads the counters as a consistent tuple: the tuple is re-read
    /// until two consecutive reads agree, so a snapshot taken while other
    /// threads are completing lookups never mixes instants.
    pub fn snapshot(&self) -> TraceCacheSnapshot {
        let mut prev = (self.hits(), self.misses(), self.evictions());
        loop {
            let cur = (self.hits(), self.misses(), self.evictions());
            if cur == prev {
                return TraceCacheSnapshot {
                    hits: cur.0,
                    misses: cur.1,
                    evictions: cur.2,
                    bytes: self.bytes(),
                    entries: self.len(),
                };
            }
            prev = cur;
        }
    }

    /// Resident trace bytes currently accounted against the budget.
    pub fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// The byte budget this cache was created with (0 = disabled).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of resident traces.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the cache holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every trace and resets all counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
        self.bytes.store(0, Ordering::Relaxed);
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCache")
            .field("traces", &self.len())
            .field("bytes", &self.bytes())
            .field("budget", &self.budget)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Suite;
    use crate::suites;

    fn spec(n: u64) -> WorkloadSpec {
        WorkloadSpec::builder("trace-test", Suite::Parsec)
            .threads(4)
            .instructions(n)
            .tweak(|p| {
                p.mix.exclusive = 0.02;
                p.mix.call = 0.03;
                p.mem.unaligned_frac = 0.05;
                p.mem.shared_frac = 0.2;
            })
            .build()
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let s = spec(20_000);
        let trace = PackedTrace::from_spec(&s);
        let generated: Vec<Instr> = StreamGen::new(&s).collect();
        let replayed: Vec<Instr> = trace.iter().collect();
        assert_eq!(generated, replayed);
        assert_eq!(trace.len(), generated.len());
    }

    #[test]
    fn round_trips_every_suite_workload_prefix() {
        for w in suites::power_suite().iter().map(|w| w.scaled(0.002)) {
            let trace = PackedTrace::from_spec(&w);
            let generated: Vec<Instr> = StreamGen::new(&w).collect();
            let replayed: Vec<Instr> = trace.iter().collect();
            assert_eq!(generated, replayed, "workload {}", w.name);
        }
    }

    #[test]
    fn replay_reports_exact_length() {
        let trace = PackedTrace::from_spec(&spec(3_000));
        let mut it = trace.iter();
        assert_eq!(it.len(), 3_000);
        it.next();
        assert_eq!(it.len(), 2_999);
        assert_eq!(it.count(), 2_999);
    }

    #[test]
    fn footprint_is_compact() {
        let trace = PackedTrace::from_spec(&spec(50_000));
        let per_instr = trace.bytes() as f64 / trace.len() as f64;
        // 1 B class + 8 B pc + shrunk payload columns (16 B per memory or
        // branch instruction): ~18 B/instr on the default mix, well under a
        // 56-byte `Vec<Instr>` element.
        assert!(per_instr < 24.0, "bytes/instr = {per_instr:.1}");
    }

    #[test]
    fn cache_generates_once_and_counts() {
        let cache = TraceCache::new();
        let s = spec(5_000);
        let a = cache.get(&s).expect("enabled cache returns a trace");
        let b = cache.get(&s).expect("enabled cache returns a trace");
        assert!(Arc::ptr_eq(&a, &b), "both callers share one Arc'd trace");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), a.bytes());
        let snap = cache.snapshot();
        assert_eq!((snap.hits, snap.misses, snap.evictions), (1, 1, 0));
        assert_eq!((snap.bytes, snap.entries), (a.bytes(), 1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.snapshot().misses, 0);
    }

    #[test]
    fn concurrent_requests_generate_each_spec_once() {
        let cache = TraceCache::new();
        let sa = spec(4_000);
        let sb = spec(6_000);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get(&sa);
                    cache.get(&sb);
                });
            }
        });
        assert_eq!(cache.misses(), 2, "each spec generated exactly once");
        assert_eq!(cache.hits(), 14);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_budget_disables() {
        let cache = TraceCache::with_budget(0);
        assert!(cache.get(&spec(1_000)).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Budget sized for roughly one trace: filling three evicts the
        // least recently used ones.
        let probe = PackedTrace::from_spec(&spec(5_000));
        let cache = TraceCache::with_budget(probe.bytes() + probe.bytes() / 2);
        let specs = [spec(5_000), spec(5_001), spec(5_002)];
        for s in &specs {
            cache.get(s);
        }
        assert!(cache.evictions() >= 1, "evictions = {}", cache.evictions());
        assert!(
            cache.bytes() <= cache.budget(),
            "resident {} over budget {}",
            cache.bytes(),
            cache.budget()
        );
        // The most recent spec survived.
        let before = cache.misses();
        cache.get(&specs[2]);
        assert_eq!(cache.misses(), before, "most recent trace still resident");
        // An evicted spec regenerates (miss), still bit-identically.
        let regen = cache.get(&specs[0]).unwrap();
        let fresh: Vec<Instr> = StreamGen::new(&specs[0]).collect();
        assert_eq!(regen.iter().collect::<Vec<_>>(), fresh);
    }

    #[test]
    fn fingerprint_separates_specs() {
        let a = TraceCache::fingerprint(&spec(1_000));
        assert_eq!(a, TraceCache::fingerprint(&spec(1_000)));
        assert_ne!(a, TraceCache::fingerprint(&spec(1_001)));
        let renamed = WorkloadSpec::builder("other-name", Suite::Parsec)
            .threads(4)
            .instructions(1_000)
            .build();
        assert_ne!(a, TraceCache::fingerprint(&renamed));
    }

    #[test]
    fn global_cache_is_shared() {
        let a = TraceCache::global();
        let b = TraceCache::global();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn iter_from_matches_skipping_the_prefix() {
        let trace = PackedTrace::from_spec(&spec(10_000));
        for offset in [0, 1, 117, 4_095, 4_096, 4_097, 8_192, 9_999, 10_000, 12_000] {
            let sought: Vec<Instr> = trace.iter_from(offset).collect();
            let skipped: Vec<Instr> = trace.iter().skip(offset).collect();
            assert_eq!(sought, skipped, "offset {offset}");
        }
        let mut it = trace.iter_from(9_000);
        assert_eq!(it.len(), 1_000);
        it.next();
        assert_eq!(it.len(), 999);
    }

    #[test]
    fn iter_from_on_empty_trace() {
        let trace = PackedTrace::encode(std::iter::empty());
        assert_eq!(trace.iter_from(0).count(), 0);
        assert_eq!(trace.iter_from(5).count(), 0);
    }

    #[test]
    fn iter_from_short_trace_seeks_past_the_only_index_entry() {
        // A trace shorter than the index stride has exactly one sparse
        // entry (at instruction 0); every non-zero offset seeks past it by
        // scanning class bytes alone.
        let trace = PackedTrace::from_spec(&spec(300));
        for offset in [0, 1, 299, 300, 301] {
            let sought: Vec<Instr> = trace.iter_from(offset).collect();
            let skipped: Vec<Instr> = trace.iter().skip(offset).collect();
            assert_eq!(sought, skipped, "offset {offset}");
        }
        assert_eq!(trace.iter_from(trace.len()).count(), 0);
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // inverted bounds are the point
    fn class_histogram_matches_decoded_classes() {
        let trace = PackedTrace::from_spec(&spec(9_000));
        let mut expect = [0u64; InstrClass::COUNT];
        for instr in trace.iter().skip(1_234).take(5_000) {
            expect[instr.class.index() as usize] += 1;
        }
        assert_eq!(trace.class_histogram(1_234..6_234), expect);
        let total: u64 = trace.class_histogram(0..trace.len()).iter().sum();
        assert_eq!(total, trace.len() as u64);
        // Out-of-range and inverted bounds clamp instead of panicking.
        assert_eq!(
            trace.class_histogram(8_000..20_000),
            trace.class_histogram(8_000..9_000)
        );
        let empty: u64 = trace.class_histogram(20_000..5).iter().sum();
        assert_eq!(empty, 0);
    }

    #[test]
    fn run_backend_is_bit_identical_to_streamed_execution() {
        use gemstone_uarch::backend::{Backend, SampleParams, TierConfig};
        use gemstone_uarch::configs::cortex_a7_hw;

        let s = spec(30_000);
        let trace = PackedTrace::from_spec(&s);
        let cfg = cortex_a7_hw();
        for tier in [
            TierConfig::atomic(),
            TierConfig::approx(),
            TierConfig::sampled(SampleParams::default()),
        ] {
            let mut via_trace = Backend::new(tier, &cfg, 1.0e9, s.threads, 7);
            let mut via_stream = Backend::new(tier, &cfg, 1.0e9, s.threads, 7);
            let a = trace.run_backend(&mut via_trace);
            let b = via_stream.run_stream(trace.iter());
            assert_eq!(a.cycles, b.cycles, "tier {}", tier.fidelity);
            assert_eq!(
                format!("{:?}", a.stats),
                format!("{:?}", b.stats),
                "tier {}",
                tier.fidelity
            );
        }
    }

    #[test]
    fn run_backend_segmented_replay_is_bit_identical() {
        use gemstone_uarch::backend::{Backend, SampleParams, TierConfig};
        use gemstone_uarch::configs::cortex_a7_hw;
        use gemstone_uarch::segment::segment_instrs;

        // Long enough to span three segments at the canonical length, so
        // run_backend takes the time-parallel path wherever the pool has
        // spare permits (and degrades to the sequential loop where not —
        // bit-identical either way, which is exactly the assertion).
        let s = spec(2 * segment_instrs() + 1_500);
        let trace = PackedTrace::from_spec(&s);
        let cfg = cortex_a7_hw();
        for tier in [
            TierConfig::approx(),
            TierConfig::sampled(SampleParams::default()),
        ] {
            let mut via_trace = Backend::new(tier, &cfg, 1.0e9, s.threads, 7);
            let mut via_stream = Backend::new(tier, &cfg, 1.0e9, s.threads, 7);
            let a = trace.run_backend(&mut via_trace);
            let b = via_stream.run_stream(trace.iter());
            assert_eq!(
                a.cycles.to_bits(),
                b.cycles.to_bits(),
                "tier {}",
                tier.fidelity
            );
            assert_eq!(
                format!("{:?}", a.stats),
                format!("{:?}", b.stats),
                "tier {}",
                tier.fidelity
            );
        }
    }

    #[test]
    fn run_grid_segmented_replay_is_bit_identical() {
        use gemstone_uarch::backend::TierConfig;
        use gemstone_uarch::configs::cortex_a7_hw;
        use gemstone_uarch::grid::GridBackend;
        use gemstone_uarch::segment::segment_instrs;

        let s = spec(2 * segment_instrs() + 777);
        let trace = PackedTrace::from_spec(&s);
        let cfg = cortex_a7_hw();
        let freqs = [0.6e9, 1.0e9, 1.4e9];
        let mut via_trace = GridBackend::new(TierConfig::approx(), &cfg, &freqs, s.threads, 7);
        let mut via_stream = GridBackend::new(TierConfig::approx(), &cfg, &freqs, s.threads, 7);
        let a = trace.run_grid(&mut via_trace);
        let b = via_stream.run_stream(trace.iter());
        assert_eq!(a.len(), b.len());
        for (lane, (ra, rb)) in a.iter().zip(&b).enumerate() {
            assert_eq!(ra.cycles.to_bits(), rb.cycles.to_bits(), "lane {lane}");
            assert_eq!(
                format!("{:?}", ra.stats),
                format!("{:?}", rb.stats),
                "lane {lane}"
            );
        }
    }
}
