//! The instruction-stream generator: turns a [`WorkloadSpec`] into a
//! deterministic stream of abstract instructions for the timing engine.
//!
//! # Examples
//!
//! ```
//! use gemstone_workloads::gen::StreamGen;
//! use gemstone_workloads::spec::{Suite, WorkloadSpec};
//!
//! let spec = WorkloadSpec::builder("demo", Suite::MiBench)
//!     .instructions(5_000)
//!     .build();
//! let instrs: Vec<_> = StreamGen::new(&spec).collect();
//! assert_eq!(instrs.len(), 5_000);
//! // Determinism: the same spec generates the same stream.
//! let again: Vec<_> = StreamGen::new(&spec).collect();
//! assert_eq!(instrs, again);
//! ```

use crate::spec::{BranchBehavior, PhaseSpec, WorkloadSpec};
use gemstone_uarch::instr::{BranchRef, Instr, InstrClass, MemRef};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Base virtual address of the data segment (keeps data pages disjoint from
/// code pages).
const DATA_BASE: u64 = 1 << 30;
/// Base virtual page of the code segment.
const CODE_BASE_PAGE: u64 = 0x100;
/// Static branch sites materialised per behaviour component.
const SITES_PER_COMPONENT: usize = 4;

#[derive(Debug, Clone)]
struct SiteState {
    behavior: BranchBehavior,
    static_id: u32,
    target_page: u64,
    counter: u32,
}

impl SiteState {
    fn outcome(&mut self, rng: &mut SmallRng) -> bool {
        match self.behavior {
            BranchBehavior::Random { taken_prob } | BranchBehavior::Biased { taken_prob } => {
                rng.gen::<f64>() < taken_prob
            }
            BranchBehavior::Pattern { bits, len } => {
                let len = u32::from(len.clamp(1, 32));
                let bit = (bits >> (self.counter % len)) & 1;
                self.counter = self.counter.wrapping_add(1);
                bit == 1
            }
            BranchBehavior::Loop { body } => {
                let body = u32::from(body.max(2));
                let taken = (self.counter % body) != body - 1;
                self.counter = self.counter.wrapping_add(1);
                taken
            }
        }
    }
}

#[derive(Debug, Clone)]
struct PhaseRuntime {
    spec: PhaseSpec,
    /// Cumulative class-probability table.
    cdf: [f64; 14],
    sites: Vec<SiteState>,
    /// Weighted site-sampling table (indices into `sites`).
    site_table: Vec<usize>,
    /// Call sites: (static id, fixed callee page). Real call sites call the
    /// same function every time.
    call_sites: Vec<(u32, u64)>,
    instructions: u64,
}

/// Deterministic instruction-stream generator. Implements
/// [`Iterator<Item = Instr>`].
#[derive(Debug)]
pub struct StreamGen {
    rng: SmallRng,
    phases: Vec<PhaseRuntime>,
    phase_idx: usize,
    phase_remaining: u64,
    remaining: u64,
    // Runtime state.
    pc: u64,
    code_pages: u64,
    seq_ptr: u64,
    call_stack: Vec<u64>,
    pending: VecDeque<Instr>,
    shared_threads: bool,
}

impl StreamGen {
    /// Builds the generator for a workload specification.
    ///
    /// # Panics
    ///
    /// Panics if the spec has no phases or a phase has no branch sites while
    /// its mix contains branches.
    pub fn new(spec: &WorkloadSpec) -> Self {
        assert!(!spec.phases.is_empty(), "workload needs phases");
        let mut rng = SmallRng::seed_from_u64(spec.derived_seed());
        let total_weight: f64 = spec.phases.iter().map(|p| p.weight.max(0.0)).sum();
        assert!(total_weight > 0.0, "phase weights must be positive");

        let mut phases = Vec::with_capacity(spec.phases.len());
        let mut site_id = 0u32;
        for (pi, p) in spec.phases.iter().enumerate() {
            let mix = p.mix.normalised();
            let probs = [
                mix.int_alu,
                mix.int_mul,
                mix.int_div,
                mix.fp_alu,
                mix.fp_div,
                mix.simd,
                mix.load,
                mix.store,
                mix.branch,
                mix.indirect,
                mix.call,
                mix.exclusive,
                mix.barrier,
                mix.nop,
            ];
            let mut cdf = [0.0; 14];
            let mut acc = 0.0;
            for (i, p) in probs.iter().enumerate() {
                acc += p;
                cdf[i] = acc;
            }
            // Materialise branch sites. Pattern behaviours get a single
            // static site so the *dynamic* outcome stream follows the
            // pattern — a tight loop with one dominant patterned branch,
            // like the paper's `par-basicmath-rad2deg`.
            let mut sites = Vec::new();
            let mut site_table = Vec::new();
            let bw: f64 = p.branches.iter().map(|b| b.weight.max(0.0)).sum();
            for b in &p.branches {
                let first = sites.len();
                let n_sites = match b.behavior {
                    BranchBehavior::Pattern { .. } => 1,
                    _ => SITES_PER_COMPONENT,
                };
                for _ in 0..n_sites {
                    sites.push(SiteState {
                        behavior: b.behavior,
                        static_id: site_id,
                        target_page: CODE_BASE_PAGE
                            + rng.gen::<u64>() % u64::from(p.code_pages.max(1)),
                        counter: 0,
                    });
                    site_id += 1;
                }
                // Sampling table entries proportional to weight.
                let entries = if bw > 0.0 {
                    ((b.weight.max(0.0) / bw) * 64.0).round() as usize
                } else {
                    0
                };
                for e in 0..entries.max(1) {
                    site_table.push(first + e % n_sites);
                }
            }
            if (mix.branch > 0.0 || mix.indirect > 0.0) && sites.is_empty() {
                panic!("phase {pi} mixes branches but declares no branch sites");
            }
            // Fixed-target call sites spread over the code footprint.
            let call_sites: Vec<(u32, u64)> = (0..8)
                .map(|k| {
                    let id = 0xF000 + (pi as u32) * 16 + k;
                    let page = CODE_BASE_PAGE + rng.gen::<u64>() % u64::from(p.code_pages.max(1));
                    (id, page)
                })
                .collect();
            let share = p.weight.max(0.0) / total_weight;
            phases.push(PhaseRuntime {
                spec: p.clone(),
                cdf,
                sites,
                site_table,
                call_sites,
                instructions: (spec.instructions as f64 * share) as u64,
            });
        }
        // Rounding remainder goes to the last phase.
        let assigned: u64 = phases.iter().map(|p| p.instructions).sum();
        if let Some(last) = phases.last_mut() {
            last.instructions += spec.instructions - assigned.min(spec.instructions);
        }

        let first_remaining = phases[0].instructions;
        let code_pages = u64::from(phases[0].spec.code_pages.max(1));
        StreamGen {
            rng,
            phases,
            phase_idx: 0,
            phase_remaining: first_remaining,
            remaining: spec.instructions,
            pc: CODE_BASE_PAGE << 12,
            code_pages,
            seq_ptr: 0,
            call_stack: Vec::new(),
            pending: VecDeque::new(),
            shared_threads: spec.threads > 1,
        }
    }

    fn advance_pc(&mut self) -> u64 {
        let pc = self.pc;
        self.pc += 4;
        // Wrap within the code footprint.
        let page = self.pc >> 12;
        if page >= CODE_BASE_PAGE + self.code_pages {
            self.pc = CODE_BASE_PAGE << 12;
        }
        pc
    }

    fn jump_to_page(&mut self, page: u64) {
        let offset = (self.rng.gen::<u64>() & 0x3FF) << 2;
        self.pc = (page << 12) | offset;
    }

    fn mem_ref(&mut self, is_store: bool) -> MemRef {
        let phase = &self.phases[self.phase_idx].spec;
        let pat = phase.mem;
        let addr = if self.rng.gen::<f64>() < pat.random_frac {
            (DATA_BASE + (self.rng.gen::<u64>() % pat.ws_bytes)) & !3
        } else {
            self.seq_ptr = (self.seq_ptr + pat.stride) % pat.ws_bytes;
            DATA_BASE + self.seq_ptr
        };
        let unaligned = self.rng.gen::<f64>() < pat.unaligned_frac;
        let shared =
            self.shared_threads && pat.shared_frac > 0.0 && self.rng.gen::<f64>() < pat.shared_frac;
        let m = if is_store {
            MemRef::store(addr, 4)
        } else {
            MemRef::load(addr, 4)
        };
        m.with_unaligned(unaligned)
            .with_shared(shared)
            .with_dependent(pat.dependent && !is_store)
    }

    fn branch_instr(&mut self, indirect: bool) -> Instr {
        let pc = self.advance_pc();
        let phase = &mut self.phases[self.phase_idx];
        let idx = phase.site_table[self.rng.gen::<usize>() % phase.site_table.len()];
        let n_sites = phase.sites.len();
        let site = &mut phase.sites[idx % n_sites];
        let taken = site.outcome(&mut self.rng);
        let (class, target_page) = if indirect {
            // Indirect targets are sticky: mostly the same target, with
            // occasional hops among a small set of pages.
            let hop = if self.rng.gen::<f64>() < 0.85 {
                0
            } else {
                1 + self.rng.gen::<u64>() % 3
            };
            (
                InstrClass::IndirectBranch,
                CODE_BASE_PAGE + (site.target_page - CODE_BASE_PAGE + hop) % self.code_pages,
            )
        } else {
            // Conditional branches are loop back-edges and short forward
            // skips: they stay within the current page. Only calls and
            // indirect branches cross pages.
            (InstrClass::Branch, pc >> 12)
        };
        let static_id = site.static_id;
        let out = Instr::branch(
            class,
            pc,
            BranchRef {
                static_id,
                taken: if indirect { true } else { taken },
                target_page,
            },
        );
        if indirect && target_page != pc >> 12 {
            self.jump_to_page(target_page);
        } else if !indirect && taken {
            // Short backward jump within the page (loop-shaped locality).
            let back = (self.rng.gen::<u64>() & 0x1FF) + 4;
            self.pc = (pc & !0xFFF) | (pc & 0xFFF).saturating_sub(back);
        }
        out
    }

    fn call_or_return(&mut self) -> Instr {
        let pc = self.advance_pc();
        let current_page = pc >> 12;
        // Return when the stack is deep enough, call otherwise.
        if !self.call_stack.is_empty() && (self.call_stack.len() >= 6 || self.rng.gen::<bool>()) {
            let back = self.call_stack.pop().expect("non-empty stack");
            let out = Instr::branch(
                InstrClass::Return,
                pc,
                BranchRef {
                    static_id: 0xFFFF,
                    taken: true,
                    target_page: back,
                },
            );
            self.jump_to_page(back);
            out
        } else {
            let sites = &self.phases[self.phase_idx].call_sites;
            let (static_id, callee) = sites[self.rng.gen::<usize>() % sites.len()];
            self.call_stack.push(current_page);
            let out = Instr::branch(
                InstrClass::Call,
                pc,
                BranchRef {
                    static_id,
                    taken: true,
                    target_page: callee,
                },
            );
            self.jump_to_page(callee);
            out
        }
    }

    fn enter_phase(&mut self, idx: usize) {
        self.phase_idx = idx;
        self.phase_remaining = self.phases[idx].instructions;
        self.code_pages = u64::from(self.phases[idx].spec.code_pages.max(1));
        self.pc = CODE_BASE_PAGE << 12;
    }
}

impl Iterator for StreamGen {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        // Pending second halves of pairs were already counted when the
        // first half was emitted.
        if let Some(i) = self.pending.pop_front() {
            return Some(i);
        }
        if self.remaining == 0 {
            return None;
        }
        while self.phase_remaining == 0 {
            if self.phase_idx + 1 >= self.phases.len() {
                // Keep draining the final phase for any rounding remainder.
                break;
            }
            self.enter_phase(self.phase_idx + 1);
        }
        self.remaining -= 1;
        self.phase_remaining = self.phase_remaining.saturating_sub(1);

        let r = self.rng.gen::<f64>();
        let cdf = self.phases[self.phase_idx].cdf;
        let class_idx = cdf.iter().position(|&c| r < c).unwrap_or(13);
        Some(match class_idx {
            0 => Instr::alu(InstrClass::IntAlu, self.advance_pc()),
            1 => Instr::alu(InstrClass::IntMul, self.advance_pc()),
            2 => Instr::alu(InstrClass::IntDiv, self.advance_pc()),
            3 => Instr::alu(InstrClass::FpAlu, self.advance_pc()),
            4 => Instr::alu(InstrClass::FpDiv, self.advance_pc()),
            5 => Instr::alu(InstrClass::Simd, self.advance_pc()),
            6 => {
                let m = self.mem_ref(false);
                Instr::mem(InstrClass::Load, self.advance_pc(), m)
            }
            7 => {
                let m = self.mem_ref(true);
                Instr::mem(InstrClass::Store, self.advance_pc(), m)
            }
            8 => self.branch_instr(false),
            9 => self.branch_instr(true),
            10 => self.call_or_return(),
            11 => {
                // An exclusive pair on shared data; the pair counts as two
                // instructions of the budget up front.
                let addr = (DATA_BASE + (self.rng.gen::<u64>() % 4096)) & !3;
                let ld = Instr::mem(
                    InstrClass::LoadExclusive,
                    self.advance_pc(),
                    MemRef::load(addr, 4).with_shared(self.shared_threads),
                );
                if self.remaining > 0 {
                    let st = Instr::mem(
                        InstrClass::StoreExclusive,
                        self.advance_pc(),
                        MemRef::store(addr, 4).with_shared(self.shared_threads),
                    );
                    self.pending.push_back(st);
                    self.remaining -= 1;
                    self.phase_remaining = self.phase_remaining.saturating_sub(1);
                }
                ld
            }
            12 => Instr {
                class: InstrClass::Barrier,
                pc: self.advance_pc(),
                mem: None,
                branch: None,
            },
            _ => Instr::alu(InstrClass::Nop, self.advance_pc()),
        })
    }

    /// Exact: every emitted instruction either decrements `remaining` at
    /// emission or (the store half of an exclusive pair) was pre-counted
    /// when queued into `pending`, so consumers can preallocate.
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize + self.pending.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for StreamGen {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BranchSite, InstrMix, MemPattern, Suite};

    fn basic_spec(n: u64) -> WorkloadSpec {
        WorkloadSpec::builder("gen-test", Suite::MiBench)
            .instructions(n)
            .build()
    }

    #[test]
    fn generates_exact_count() {
        let spec = basic_spec(12_345);
        assert_eq!(StreamGen::new(&spec).count(), 12_345);
    }

    #[test]
    fn size_hint_is_exact_throughout_iteration() {
        let spec = WorkloadSpec::builder("hint", Suite::Parsec)
            .threads(4)
            .instructions(5_000)
            .tweak(|p| p.mix.exclusive = 0.05) // forces pending-queue pairs
            .build();
        let mut gen = StreamGen::new(&spec);
        assert_eq!(gen.len(), 5_000);
        let mut produced = 0usize;
        loop {
            let (lo, hi) = gen.size_hint();
            assert_eq!(Some(lo), hi);
            assert_eq!(lo, 5_000 - produced);
            if gen.next().is_none() {
                break;
            }
            produced += 1;
        }
        assert_eq!(produced, 5_000);
        assert_eq!(gen.len(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let spec = basic_spec(5_000);
        let a: Vec<Instr> = StreamGen::new(&spec).collect();
        let b: Vec<Instr> = StreamGen::new(&spec).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_different_streams() {
        let a: Vec<Instr> = StreamGen::new(&basic_spec(1000)).collect();
        let spec_b = WorkloadSpec::builder("other", Suite::MiBench)
            .instructions(1000)
            .build();
        let b: Vec<Instr> = StreamGen::new(&spec_b).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_shares_are_respected() {
        let spec = basic_spec(100_000);
        let instrs: Vec<Instr> = StreamGen::new(&spec).collect();
        let loads = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Load)
            .count() as f64;
        let branches = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Branch)
            .count() as f64;
        let n = instrs.len() as f64;
        let mix = InstrMix::integer_baseline().normalised();
        assert!(
            (loads / n - mix.load).abs() < 0.02,
            "load share {}",
            loads / n
        );
        assert!(
            (branches / n - mix.branch).abs() < 0.02,
            "branch share {}",
            branches / n
        );
    }

    #[test]
    fn code_footprint_respected() {
        let spec = WorkloadSpec::builder("pages", Suite::MiBench)
            .instructions(50_000)
            .tweak(|p| p.code_pages = 5)
            .build();
        let pages: std::collections::HashSet<u64> =
            StreamGen::new(&spec).map(|i| i.page()).collect();
        assert!(pages.len() <= 5, "pages = {}", pages.len());
        assert!(pages
            .iter()
            .all(|&p| (CODE_BASE_PAGE..CODE_BASE_PAGE + 5).contains(&p)));
    }

    #[test]
    fn working_set_respected() {
        let spec = WorkloadSpec::builder("ws", Suite::MiBench)
            .instructions(50_000)
            .tweak(|p| p.mem = MemPattern::streaming(8 * 1024, 16))
            .build();
        for i in StreamGen::new(&spec) {
            if let Some(m) = i.mem {
                assert!(m.vaddr >= DATA_BASE);
                assert!(m.vaddr < DATA_BASE + 8 * 1024 + 64);
            }
        }
    }

    #[test]
    fn exclusives_come_in_pairs() {
        let spec = WorkloadSpec::builder("excl", Suite::Parsec)
            .threads(4)
            .instructions(20_000)
            .tweak(|p| {
                p.mix.exclusive = 0.05;
            })
            .build();
        let instrs: Vec<Instr> = StreamGen::new(&spec).collect();
        let ld = instrs
            .iter()
            .filter(|i| i.class == InstrClass::LoadExclusive)
            .count() as i64;
        let st = instrs
            .iter()
            .filter(|i| i.class == InstrClass::StoreExclusive)
            .count() as i64;
        assert!((ld - st).abs() <= 1, "ld {ld} st {st}");
        assert!(ld > 100);
    }

    #[test]
    fn calls_and_returns_roughly_balance() {
        let spec = WorkloadSpec::builder("callret", Suite::MiBench)
            .instructions(50_000)
            .tweak(|p| p.mix.call = 0.05)
            .build();
        let instrs: Vec<Instr> = StreamGen::new(&spec).collect();
        let calls = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Call)
            .count() as f64;
        let rets = instrs
            .iter()
            .filter(|i| i.class == InstrClass::Return)
            .count() as f64;
        assert!(calls > 0.0 && rets > 0.0);
        assert!(
            (calls / rets) < 1.6 && (calls / rets) > 0.6,
            "{calls}/{rets}"
        );
    }

    #[test]
    fn pattern_branch_sites_follow_pattern() {
        let spec = WorkloadSpec::builder("pattern", Suite::ParMiBench)
            .instructions(10_000)
            .tweak(|p| {
                p.branches = vec![BranchSite {
                    behavior: BranchBehavior::Pattern { bits: 0b01, len: 2 },
                    weight: 1.0,
                }];
                p.mix = InstrMix {
                    branch: 1.0,
                    ..InstrMix {
                        int_alu: 0.0,
                        int_mul: 0.0,
                        int_div: 0.0,
                        fp_alu: 0.0,
                        fp_div: 0.0,
                        simd: 0.0,
                        load: 0.0,
                        store: 0.0,
                        branch: 1.0,
                        indirect: 0.0,
                        call: 0.0,
                        exclusive: 0.0,
                        barrier: 0.0,
                        nop: 0.0,
                    }
                };
            })
            .build();
        // Per-site outcomes must alternate strictly.
        use std::collections::HashMap;
        let mut last: HashMap<u32, bool> = HashMap::new();
        let mut alternations = 0u32;
        let mut repeats = 0u32;
        for i in StreamGen::new(&spec) {
            let b = i.branch.expect("all branches");
            if let Some(&prev) = last.get(&b.static_id) {
                if prev != b.taken {
                    alternations += 1;
                } else {
                    repeats += 1;
                }
            }
            last.insert(b.static_id, b.taken);
        }
        assert!(alternations > 0);
        assert_eq!(repeats, 0, "pattern must alternate per site");
    }

    #[test]
    fn multi_phase_split() {
        let mut p1 = crate::spec::PhaseSpec::default_phase();
        p1.weight = 3.0;
        p1.mix = InstrMix::integer_baseline();
        let mut p2 = crate::spec::PhaseSpec::default_phase();
        p2.weight = 1.0;
        p2.mix = InstrMix::fp_baseline();
        let spec = WorkloadSpec::builder("phased", Suite::Whetstone)
            .instructions(40_000)
            .phases(vec![p1, p2])
            .build();
        let instrs: Vec<Instr> = StreamGen::new(&spec).collect();
        assert_eq!(instrs.len(), 40_000);
        let fp = instrs
            .iter()
            .filter(|i| i.class == InstrClass::FpAlu)
            .count() as f64;
        // Phase 2 is 25 % of the run at fp_alu 0.30 → ~7.5 % overall.
        assert!(
            fp / 40_000.0 > 0.04 && fp / 40_000.0 < 0.12,
            "fp share {}",
            fp / 40_000.0
        );
    }

    #[test]
    fn shared_flags_only_with_threads() {
        let mk = |threads| {
            let spec = WorkloadSpec::builder("sh", Suite::Parsec)
                .threads(threads)
                .instructions(20_000)
                .tweak(|p| p.mem.shared_frac = 0.5)
                .build();
            StreamGen::new(&spec)
                .filter(|i| i.mem.is_some_and(|m| m.shared))
                .count()
        };
        assert_eq!(mk(1), 0);
        assert!(mk(4) > 100);
    }
}
