//! Workload specifications: the parameter space from which synthetic
//! instruction streams are generated.
//!
//! # Examples
//!
//! ```
//! use gemstone_workloads::spec::{InstrMix, WorkloadSpec};
//!
//! let spec = WorkloadSpec::builder("example", gemstone_workloads::spec::Suite::MiBench)
//!     .instructions(10_000)
//!     .build();
//! assert_eq!(spec.name, "example");
//! assert!(spec.phases[0].mix.normalised().int_alu > 0.0);
//! ```

/// Benchmark suite a workload belongs to (drives the naming prefixes used
/// in the paper's figures: `mi-`, `par-`, `parsec-`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Suite {
    /// MiBench embedded suite.
    MiBench,
    /// ParMiBench (parallel MiBench).
    ParMiBench,
    /// PARSEC multiprocessor suite.
    Parsec,
    /// LMBench micro-benchmarks.
    LmBench,
    /// Roy Longbottom's PC benchmark collection.
    RoyLongbottom,
    /// Dhrystone.
    Dhrystone,
    /// Whetstone.
    Whetstone,
}

impl Suite {
    /// The workload-name prefix used in the paper's figures.
    pub fn prefix(self) -> &'static str {
        match self {
            Suite::MiBench => "mi",
            Suite::ParMiBench => "par",
            Suite::Parsec => "parsec",
            Suite::LmBench => "lm",
            Suite::RoyLongbottom => "rl",
            Suite::Dhrystone => "dhry",
            Suite::Whetstone => "whet",
        }
    }
}

/// Relative frequencies of instruction classes within a phase
/// (normalised by the generator; they need not sum to 1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InstrMix {
    /// Integer ALU.
    pub int_alu: f64,
    /// Integer multiply.
    pub int_mul: f64,
    /// Integer divide.
    pub int_div: f64,
    /// Scalar FP.
    pub fp_alu: f64,
    /// FP divide.
    pub fp_div: f64,
    /// SIMD.
    pub simd: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Conditional branches.
    pub branch: f64,
    /// Indirect branches.
    pub indirect: f64,
    /// Call/return pairs.
    pub call: f64,
    /// Load-/store-exclusive pairs.
    pub exclusive: f64,
    /// Barriers.
    pub barrier: f64,
    /// Nops.
    pub nop: f64,
}

impl InstrMix {
    /// A generic integer-code mix to build variations from.
    pub fn integer_baseline() -> Self {
        InstrMix {
            int_alu: 0.42,
            int_mul: 0.02,
            int_div: 0.002,
            fp_alu: 0.0,
            fp_div: 0.0,
            simd: 0.0,
            load: 0.23,
            store: 0.10,
            branch: 0.19,
            indirect: 0.005,
            call: 0.035,
            exclusive: 0.0,
            barrier: 0.0,
            nop: 0.033,
        }
    }

    /// A generic floating-point mix.
    pub fn fp_baseline() -> Self {
        InstrMix {
            int_alu: 0.22,
            int_mul: 0.01,
            int_div: 0.001,
            fp_alu: 0.30,
            fp_div: 0.02,
            simd: 0.0,
            load: 0.21,
            store: 0.09,
            branch: 0.12,
            indirect: 0.002,
            call: 0.03,
            exclusive: 0.0,
            barrier: 0.0,
            nop: 0.022,
        }
    }

    /// Returns the mix scaled to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if all entries are zero or any is negative.
    pub fn normalised(&self) -> InstrMix {
        let vals = self.as_array();
        assert!(
            vals.iter().all(|&v| v >= 0.0),
            "instruction mix entries must be non-negative"
        );
        let sum: f64 = vals.iter().sum();
        assert!(sum > 0.0, "instruction mix must have a positive entry");
        let mut out = *self;
        for (dst, v) in out.as_array_mut().iter_mut().zip(vals) {
            **dst = v / sum;
        }
        out
    }

    fn as_array(&self) -> [f64; 14] {
        [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_alu,
            self.fp_div,
            self.simd,
            self.load,
            self.store,
            self.branch,
            self.indirect,
            self.call,
            self.exclusive,
            self.barrier,
            self.nop,
        ]
    }

    fn as_array_mut(&mut self) -> [&mut f64; 14] {
        [
            &mut self.int_alu,
            &mut self.int_mul,
            &mut self.int_div,
            &mut self.fp_alu,
            &mut self.fp_div,
            &mut self.simd,
            &mut self.load,
            &mut self.store,
            &mut self.branch,
            &mut self.indirect,
            &mut self.call,
            &mut self.exclusive,
            &mut self.barrier,
            &mut self.nop,
        ]
    }
}

/// Data-memory access behaviour of a phase.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemPattern {
    /// Data working-set size in bytes.
    pub ws_bytes: u64,
    /// Stride of the sequential access component in bytes.
    pub stride: u64,
    /// Fraction of accesses at random offsets within the working set.
    pub random_frac: f64,
    /// Fraction of accesses that cross alignment boundaries.
    pub unaligned_frac: f64,
    /// Fraction of accesses to shared data (meaningful when `threads > 1`).
    pub shared_frac: f64,
    /// Whether loads form a serial dependence chain (pointer chasing).
    pub dependent: bool,
}

impl MemPattern {
    /// Sequential streaming over `ws_bytes` with the given stride.
    pub fn streaming(ws_bytes: u64, stride: u64) -> Self {
        MemPattern {
            ws_bytes: ws_bytes.max(64),
            stride: stride.max(4),
            random_frac: 0.05,
            unaligned_frac: 0.0,
            shared_frac: 0.0,
            dependent: false,
        }
    }

    /// Random pointer-chasing over `ws_bytes`.
    pub fn pointer_chase(ws_bytes: u64) -> Self {
        MemPattern {
            ws_bytes: ws_bytes.max(64),
            stride: 8,
            random_frac: 0.9,
            unaligned_frac: 0.0,
            shared_frac: 0.0,
            dependent: true,
        }
    }
}

/// Direction behaviour of a static branch site.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BranchBehavior {
    /// Taken with a fixed probability, independently each time.
    Random {
        /// Probability of "taken".
        taken_prob: f64,
    },
    /// Strongly biased (drawn once per execution from the bias — a loop
    /// back-edge is `Biased { taken_prob: ~0.97 }`).
    Biased {
        /// Probability of "taken".
        taken_prob: f64,
    },
    /// A repeating pattern given by the low `len` bits of `bits`
    /// (bit 0 first). `bits: 0b01, len: 2` is the alternating pattern that
    /// the buggy `ex5_big` predictor inverts.
    Pattern {
        /// Pattern bits, LSB first.
        bits: u32,
        /// Pattern length in bits (1–32).
        len: u8,
    },
    /// A loop back-edge: taken `body − 1` times, then not-taken, repeating.
    Loop {
        /// Loop trip count.
        body: u16,
    },
}

/// A weighted branch-behaviour mixture component.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BranchSite {
    /// Behaviour of this group of static sites.
    pub behavior: BranchBehavior,
    /// Relative share of dynamic branches using this behaviour.
    pub weight: f64,
}

/// One execution phase.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PhaseSpec {
    /// Fraction of the workload's instructions spent in this phase.
    pub weight: f64,
    /// Instruction mix.
    pub mix: InstrMix,
    /// Memory behaviour.
    pub mem: MemPattern,
    /// Branch behaviour mixture.
    pub branches: Vec<BranchSite>,
    /// Code footprint in 4 KiB pages.
    pub code_pages: u32,
}

impl PhaseSpec {
    /// A single-phase default: integer mix, small streaming working set,
    /// biased branches, modest code footprint.
    pub fn default_phase() -> Self {
        PhaseSpec {
            weight: 1.0,
            mix: InstrMix::integer_baseline(),
            mem: MemPattern::streaming(64 * 1024, 16),
            branches: vec![BranchSite {
                behavior: BranchBehavior::Biased { taken_prob: 0.9 },
                weight: 1.0,
            }],
            code_pages: 8,
        }
    }
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSpec {
    /// Workload name as used in the paper's figures (e.g.
    /// `par-basicmath-rad2deg`).
    pub name: String,
    /// Source suite.
    pub suite: Suite,
    /// Software threads (1 or 4 in the paper).
    pub threads: u32,
    /// Instructions generated per run.
    pub instructions: u64,
    /// Phases (weights are normalised by the generator).
    pub phases: Vec<PhaseSpec>,
    /// Base RNG seed (combined with the name hash for determinism).
    pub seed: u64,
}

impl WorkloadSpec {
    /// Starts building a workload with one default phase.
    pub fn builder(name: impl Into<String>, suite: Suite) -> WorkloadBuilder {
        WorkloadBuilder {
            spec: WorkloadSpec {
                name: name.into(),
                suite,
                threads: 1,
                instructions: 300_000,
                phases: vec![PhaseSpec::default_phase()],
                seed: 0,
            },
        }
    }

    /// Deterministic seed derived from the name and base seed.
    pub fn derived_seed(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in self.name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Returns a copy with the instruction count scaled by `factor`
    /// (minimum 1000 instructions).
    pub fn scaled(&self, factor: f64) -> WorkloadSpec {
        let mut s = self.clone();
        s.instructions = ((s.instructions as f64 * factor) as u64).max(1000);
        s
    }
}

/// Builder for [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    spec: WorkloadSpec,
}

impl WorkloadBuilder {
    /// Sets the thread count.
    pub fn threads(mut self, threads: u32) -> Self {
        self.spec.threads = threads.max(1);
        self
    }

    /// Sets the instruction budget.
    pub fn instructions(mut self, instructions: u64) -> Self {
        self.spec.instructions = instructions.max(1000);
        self
    }

    /// Replaces the phase list.
    pub fn phases(mut self, phases: Vec<PhaseSpec>) -> Self {
        assert!(!phases.is_empty(), "workload needs at least one phase");
        self.spec.phases = phases;
        self
    }

    /// Convenience: replaces the single phase.
    pub fn phase(mut self, phase: PhaseSpec) -> Self {
        self.spec.phases = vec![phase];
        self
    }

    /// Mutates the (single) current phase in place.
    pub fn tweak(mut self, f: impl FnOnce(&mut PhaseSpec)) -> Self {
        f(self.spec.phases.last_mut().expect("at least one phase"));
        self
    }

    /// Sets the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> WorkloadSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_normalises() {
        let m = InstrMix::integer_baseline().normalised();
        let sum: f64 = m.as_array().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive entry")]
    fn zero_mix_panics() {
        let mut m = InstrMix::integer_baseline();
        for v in m.as_array_mut() {
            *v = 0.0;
        }
        let _ = m.normalised();
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let w = WorkloadSpec::builder("x", Suite::Parsec)
            .threads(4)
            .instructions(50_000)
            .seed(9)
            .build();
        assert_eq!(w.threads, 4);
        assert_eq!(w.instructions, 50_000);
        assert_eq!(w.suite.prefix(), "parsec");
        assert_eq!(w.phases.len(), 1);
    }

    #[test]
    fn derived_seed_depends_on_name_and_seed() {
        let a = WorkloadSpec::builder("a", Suite::MiBench).build();
        let b = WorkloadSpec::builder("b", Suite::MiBench).build();
        assert_ne!(a.derived_seed(), b.derived_seed());
        let a2 = WorkloadSpec::builder("a", Suite::MiBench).seed(1).build();
        assert_ne!(a.derived_seed(), a2.derived_seed());
        // Stable across calls.
        assert_eq!(a.derived_seed(), a.derived_seed());
    }

    #[test]
    fn scaled_respects_minimum() {
        let w = WorkloadSpec::builder("x", Suite::MiBench)
            .instructions(10_000)
            .build();
        assert_eq!(w.scaled(2.0).instructions, 20_000);
        assert_eq!(w.scaled(1e-9).instructions, 1000);
    }

    #[test]
    fn mem_pattern_constructors_clamp() {
        let p = MemPattern::streaming(1, 1);
        assert!(p.ws_bytes >= 64);
        assert!(p.stride >= 4);
        let c = MemPattern::pointer_chase(1 << 20);
        assert!(c.dependent);
        assert!(c.random_frac > 0.5);
    }

    #[test]
    fn suite_prefixes() {
        assert_eq!(Suite::MiBench.prefix(), "mi");
        assert_eq!(Suite::ParMiBench.prefix(), "par");
        assert_eq!(Suite::LmBench.prefix(), "lm");
    }
}
