#![warn(missing_docs)]

//! # gemstone-workloads
//!
//! Deterministic synthetic workloads standing in for the benchmark suites
//! of the GemStone paper (Walker et al., ISPASS 2018): MiBench, ParMiBench,
//! PARSEC (single- and four-threaded), LMBench, Roy Longbottom's collection,
//! Dhrystone and Whetstone — 65 workloads in total, of which 45 form the
//! gem5-validation set (§III of the paper).
//!
//! The statistical methodology operates on workload *diversity*, not on
//! program semantics, so each workload is a parameterised generator
//! ([`spec::WorkloadSpec`]) producing an abstract instruction stream with a
//! characteristic instruction mix, memory pattern, branch behaviour and
//! code footprint. The suite definitions ([`suites`]) span the behavioural
//! axes the paper's clusters occupy: control-heavy, integer-dominated,
//! floating-point, streaming, pointer-chasing and concurrent
//! (barrier/exclusive-heavy) workloads, including the pathological
//! periodic-branch workload `par-basicmath-rad2deg` whose branch pattern a
//! correct predictor nails and the buggy `ex5_big` predictor inverts.
//!
//! [`microbench`] provides an `lat_mem_rd`-style pointer-chase generator
//! for the Fig. 4 memory-latency experiment.
//!
//! [`trace`] provides a compact packed-trace encoding of generated streams
//! plus a process-wide, byte-budgeted trace cache, so the simulation grid
//! generates each workload's stream once and replays it for every
//! (configuration, frequency) tuple.
//!
//! # Examples
//!
//! ```
//! use gemstone_workloads::suites;
//!
//! let validation = suites::validation_suite();
//! assert_eq!(validation.len(), 45);
//! let all = suites::power_suite();
//! assert_eq!(all.len(), 65);
//! ```

pub mod gen;
pub mod microbench;
pub mod spec;
pub mod suites;
pub mod trace;
