//! The 65 named workloads of the paper's experimental setup (§III), grouped
//! by suite, plus the 45-workload gem5-validation subset.
//!
//! Workload parameters are chosen so the set spans the behavioural axes the
//! paper's HCA clusters occupy: integer/crypto kernels, loop-pattern
//! codes, image streaming, floating-point kernels, pointer chasing,
//! large-code branchy programs, streaming memory hogs and concurrent
//! (4-thread) variants with barriers/exclusives/shared data.
//! `par-basicmath-rad2deg` carries a dominant alternating branch pattern —
//! the paper's pathological Cluster-16 workload (hardware BP accuracy
//! 99.9 %, old `ex5_big` model 0.86 %).
//!
//! # Catalogue
//!
//! | family | workloads | character |
//! |---|---|---|
//! | crypto / tight integer | `mi-sha`, `mi-crc32`, `mi-blowfish-enc`, `par-sha`, `rl-intrate`, `rl-dhry2`, `dhry-dhrystone` | tiny working sets, loop-dominated, highly predictable branches |
//! | loop-pattern integer | `mi-bitcount`, `par-bitcount`, `mi-stringsearch`, `par-stringsearch` | periodic branch patterns (the buggy predictor's worst case) |
//! | image / media streaming | `mi-susan-*`, `mi-jpeg-*`, `par-susan-edges`, `rl-neonspeed` | strided streaming + multiply/SIMD |
//! | floating point | `mi-fft`, `mi-fft-inv`, `mi-basicmath`, `par-basicmath-*`, `whet-whetstone`, `rl-whets-*`, `rl-linpack`, `rl-livermore`, `parsec-blackscholes/swaptions` | VFP-heavy with loop nests |
//! | pointer chasing | `mi-dijkstra`, `mi-patricia`, `par-dijkstra`, `par-patricia`, `parsec-canneal`, `lm-lat-mem-rd-*` | dependent random loads, DTLB pressure |
//! | large-code branchy | `mi-typeset`, `parsec-ferret/bodytrack/freqmine/dedup` | 36–72-page code footprints, ITLB pressure, mixed branches |
//! | memory bandwidth | `lm-bw-mem-*`, `rl-memspeed-*`, `rl-busspeed`, `parsec-streamcluster/fluidanimate` | large-working-set streaming |
//! | concurrent (4 threads) | every `par-*` and `parsec-*-4` | barriers, exclusives, shared data, coherence traffic |
//!
//! # Examples
//!
//! ```
//! use gemstone_workloads::suites::{by_name, validation_suite};
//!
//! assert!(by_name("par-basicmath-rad2deg").is_some());
//! assert_eq!(validation_suite().len(), 45);
//! ```

use crate::spec::{BranchBehavior, BranchSite, InstrMix, MemPattern, Suite, WorkloadSpec};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn site(behavior: BranchBehavior, weight: f64) -> BranchSite {
    BranchSite { behavior, weight }
}

fn biased(p: f64, w: f64) -> BranchSite {
    site(BranchBehavior::Biased { taken_prob: p }, w)
}

fn pattern(bits: u32, len: u8, w: f64) -> BranchSite {
    site(BranchBehavior::Pattern { bits, len }, w)
}

fn looped(body: u16, w: f64) -> BranchSite {
    site(BranchBehavior::Loop { body }, w)
}

fn random(p: f64, w: f64) -> BranchSite {
    site(BranchBehavior::Random { taken_prob: p }, w)
}

/// Standard per-run instruction budget. Callers can rescale with
/// [`WorkloadSpec::scaled`].
pub const DEFAULT_INSTRUCTIONS: u64 = 200_000;

fn wl(
    name: &str,
    suite: Suite,
    threads: u32,
    f: impl FnOnce(&mut crate::spec::PhaseSpec),
) -> WorkloadSpec {
    WorkloadSpec::builder(name, suite)
        .threads(threads)
        .instructions(DEFAULT_INSTRUCTIONS)
        .tweak(f)
        .build()
}

/// Adds 4-thread concurrency features to a phase (barriers, exclusives,
/// shared data).
fn concurrent(p: &mut crate::spec::PhaseSpec) {
    p.mix.barrier = 0.004;
    p.mix.exclusive = 0.006;
    p.mem.shared_frac = 0.3;
}

// ---------------------------------------------------------------------------
// MiBench (17)
// ---------------------------------------------------------------------------

fn mibench() -> Vec<WorkloadSpec> {
    vec![
        wl("mi-susan-smoothing", Suite::MiBench, 1, |p| {
            p.mix.int_mul = 0.08;
            p.mix.load = 0.30;
            p.mix.store = 0.12;
            p.mix.branch = 0.08;
            p.mem = MemPattern::streaming(2 * MB, 4);
            p.branches = vec![biased(0.99, 0.8), looped(64, 0.2)];
            p.code_pages = 22;
        }),
        wl("mi-susan-edges", Suite::MiBench, 1, |p| {
            p.mix.int_mul = 0.10;
            p.mix.load = 0.28;
            p.mix.branch = 0.10;
            p.mem = MemPattern::streaming(2 * MB, 4);
            p.branches = vec![
                biased(0.99, 0.5),
                pattern(0b00_1101, 6, 0.53),
                looped(32, 0.2),
            ];
            p.code_pages = 26;
        }),
        wl("mi-susan-corners", Suite::MiBench, 1, |p| {
            p.mix.int_mul = 0.09;
            p.mix.load = 0.26;
            p.mix.branch = 0.12;
            p.mem = MemPattern::streaming(MB, 4);
            p.branches = vec![biased(0.99, 0.4), pattern(0b011, 3, 0.7), looped(16, 0.2)];
            p.code_pages = 26;
        }),
        wl("mi-jpeg-encode", Suite::MiBench, 1, |p| {
            p.mix.simd = 0.10;
            p.mix.int_mul = 0.06;
            p.mix.load = 0.26;
            p.mix.store = 0.12;
            p.mem = MemPattern::streaming(4 * MB, 8);
            p.branches = vec![looped(64, 0.5), biased(0.99, 0.3), pattern(0b0111, 4, 0.35)];
            p.code_pages = 40;
        }),
        wl("mi-jpeg-decode", Suite::MiBench, 1, |p| {
            p.mix.simd = 0.12;
            p.mix.load = 0.28;
            p.mix.store = 0.14;
            p.mem = MemPattern::streaming(4 * MB, 8);
            p.branches = vec![looped(64, 0.5), biased(0.99, 0.35), pattern(0b01, 2, 0.26)];
            p.code_pages = 36;
        }),
        wl("mi-typeset", Suite::MiBench, 1, |p| {
            // Large code footprint, data-dependent branching: ITLB/L1I heavy.
            p.mix.branch = 0.19;
            p.mix.indirect = 0.02;
            p.mix.call = 0.05;
            p.mix.load = 0.26;
            p.mem = MemPattern {
                ws_bytes: 8 * MB,
                stride: 32,
                random_frac: 0.5,
                unaligned_frac: 0.01,
                shared_frac: 0.0,
                dependent: false,
            };
            p.branches = vec![
                pattern(0b0110, 4, 0.75),
                biased(0.99, 0.45),
                random(0.55, 0.02),
            ];
            p.code_pages = 72;
        }),
        wl("mi-dijkstra", Suite::MiBench, 1, |p| {
            p.mix.load = 0.30;
            p.mix.branch = 0.17;
            p.mem = MemPattern::pointer_chase(4 * MB);
            p.branches = vec![
                biased(0.99, 0.4),
                pattern(0b0101_1010, 8, 0.75),
                random(0.6, 0.02),
            ];
            p.code_pages = 20;
        }),
        wl("mi-patricia", Suite::MiBench, 1, |p| {
            p.mix.load = 0.32;
            p.mix.branch = 0.18;
            p.mix.indirect = 0.015;
            p.mem = MemPattern::pointer_chase(8 * MB);
            p.branches = vec![
                pattern(0b01_1011, 6, 0.75),
                biased(0.99, 0.4),
                random(0.5, 0.02),
            ];
            p.code_pages = 36;
        }),
        wl("mi-stringsearch", Suite::MiBench, 1, |p| {
            p.mix.branch = 0.22;
            p.mix.load = 0.30;
            p.mem = MemPattern::streaming(512 * KB, 1);
            p.branches = vec![
                pattern(0b0011, 4, 0.75),
                biased(0.99, 0.35),
                random(0.5, 0.02),
            ];
            p.code_pages = 18;
        }),
        wl("mi-blowfish-enc", Suite::MiBench, 1, |p| {
            p.mix.int_alu = 0.55;
            p.mix.load = 0.22;
            p.mix.branch = 0.08;
            p.mem = MemPattern::streaming(16 * KB, 4);
            p.branches = vec![looped(16, 0.7), biased(0.97, 0.3)];
            p.code_pages = 3;
        }),
        wl("mi-sha", Suite::MiBench, 1, |p| {
            p.mix.int_alu = 0.60;
            p.mix.load = 0.18;
            p.mix.branch = 0.07;
            p.mem = MemPattern::streaming(8 * KB, 4);
            p.branches = vec![looped(80, 0.8), biased(0.99, 0.2)];
            p.code_pages = 2;
        }),
        wl("mi-crc32", Suite::MiBench, 1, |p| {
            p.mix.int_alu = 0.52;
            p.mix.load = 0.26;
            p.mix.branch = 0.10;
            p.mem = MemPattern::streaming(MB, 1);
            p.branches = vec![looped(128, 0.9), biased(0.99, 0.1)];
            p.code_pages = 1;
        }),
        wl("mi-fft", Suite::MiBench, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mem = MemPattern::streaming(512 * KB, 8);
            p.branches = vec![looped(32, 0.6), pattern(0b01, 2, 0.44), biased(0.99, 0.15)];
            p.code_pages = 20;
        }),
        wl("mi-fft-inv", Suite::MiBench, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_div = 0.03;
            p.mem = MemPattern::streaming(512 * KB, 8);
            p.branches = vec![looped(32, 0.6), pattern(0b10, 2, 0.44), biased(0.99, 0.15)];
            p.code_pages = 20;
        }),
        wl("mi-gsm-enc", Suite::MiBench, 1, |p| {
            p.mix.int_alu = 0.46;
            p.mix.int_mul = 0.08;
            p.mix.load = 0.22;
            p.mem = MemPattern::streaming(256 * KB, 4);
            p.branches = vec![
                looped(40, 0.5),
                pattern(0b0011, 4, 0.44),
                biased(0.99, 0.25),
            ];
            p.code_pages = 22;
        }),
        wl("mi-bitcount", Suite::MiBench, 1, |p| {
            p.mix.int_alu = 0.58;
            p.mix.branch = 0.16;
            p.mix.load = 0.12;
            p.mem = MemPattern::streaming(8 * KB, 4);
            p.branches = vec![
                pattern(0b0110_1001, 8, 0.75),
                looped(8, 0.35),
                biased(0.99, 0.1),
            ];
            p.code_pages = 2;
        }),
        wl("mi-basicmath", Suite::MiBench, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_div = 0.05;
            p.mix.int_div = 0.01;
            p.mem = MemPattern::streaming(32 * KB, 8);
            p.branches = vec![looped(16, 0.5), pattern(0b01, 2, 0.53), biased(0.99, 0.2)];
            p.code_pages = 3;
        }),
    ]
}

// ---------------------------------------------------------------------------
// ParMiBench (8) — four-thread parallel variants.
// ---------------------------------------------------------------------------

fn parmibench() -> Vec<WorkloadSpec> {
    vec![
        // The paper's pathological Cluster-16 workload: a tight
        // angle-conversion loop whose dominant branch alternates every
        // iteration. A correct predictor is near-perfect; the buggy
        // stale-history predictor systematically inverts it.
        wl("par-basicmath-rad2deg", Suite::ParMiBench, 4, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_div = 0.04;
            p.mix.branch = 0.20;
            p.mem = MemPattern::streaming(16 * KB, 8);
            p.branches = vec![pattern(0b01, 2, 0.9), biased(0.99, 0.1)];
            p.code_pages = 2;
            concurrent(p);
        }),
        wl("par-basicmath-cubic", Suite::ParMiBench, 4, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_div = 0.06;
            p.mem = MemPattern::streaming(32 * KB, 8);
            p.branches = vec![looped(12, 0.5), pattern(0b0011, 4, 0.53), biased(0.99, 0.2)];
            p.code_pages = 3;
            concurrent(p);
        }),
        wl("par-bitcount", Suite::ParMiBench, 4, |p| {
            p.mix.int_alu = 0.55;
            p.mix.branch = 0.16;
            p.mem = MemPattern::streaming(8 * KB, 4);
            p.branches = vec![
                pattern(0b0110_1001, 8, 0.75),
                looped(8, 0.4),
                biased(0.99, 0.1),
            ];
            p.code_pages = 2;
            concurrent(p);
        }),
        wl("par-susan-edges", Suite::ParMiBench, 4, |p| {
            p.mix.int_mul = 0.10;
            p.mix.load = 0.28;
            p.mem = MemPattern::streaming(2 * MB, 4);
            p.branches = vec![
                biased(0.99, 0.5),
                pattern(0b00_1101, 6, 0.53),
                looped(32, 0.2),
            ];
            p.code_pages = 26;
            concurrent(p);
        }),
        wl("par-dijkstra", Suite::ParMiBench, 4, |p| {
            p.mix.load = 0.30;
            p.mix.branch = 0.17;
            p.mem = MemPattern::pointer_chase(4 * MB);
            p.branches = vec![
                biased(0.99, 0.4),
                pattern(0b0101_1010, 8, 0.75),
                random(0.6, 0.02),
            ];
            p.code_pages = 20;
            concurrent(p);
        }),
        wl("par-patricia", Suite::ParMiBench, 4, |p| {
            p.mix.load = 0.32;
            p.mix.branch = 0.18;
            p.mem = MemPattern::pointer_chase(8 * MB);
            p.branches = vec![
                pattern(0b01_1011, 6, 0.75),
                biased(0.99, 0.4),
                random(0.5, 0.02),
            ];
            p.code_pages = 36;
            concurrent(p);
        }),
        wl("par-stringsearch", Suite::ParMiBench, 4, |p| {
            p.mix.branch = 0.22;
            p.mix.load = 0.30;
            p.mem = MemPattern::streaming(512 * KB, 1);
            p.branches = vec![
                pattern(0b0011, 4, 0.75),
                biased(0.99, 0.35),
                random(0.5, 0.02),
            ];
            p.code_pages = 18;
            concurrent(p);
        }),
        wl("par-sha", Suite::ParMiBench, 4, |p| {
            p.mix.int_alu = 0.58;
            p.mix.load = 0.18;
            p.mem = MemPattern::streaming(8 * KB, 4);
            p.branches = vec![looped(80, 0.8), biased(0.99, 0.2)];
            p.code_pages = 2;
            concurrent(p);
        }),
    ]
}

// ---------------------------------------------------------------------------
// PARSEC (9 apps × {1, 4} threads = 18)
// ---------------------------------------------------------------------------

fn parsec_app(name: &str, threads: u32) -> WorkloadSpec {
    let full = format!("parsec-{name}-{threads}");
    let mt = threads > 1;
    wl(&full, Suite::Parsec, threads, |p| {
        match name {
            "blackscholes" => {
                p.mix = InstrMix::fp_baseline();
                p.mix.fp_div = 0.04;
                p.mem = MemPattern::streaming(2 * MB, 8);
                p.branches = vec![biased(0.99, 0.7), looped(24, 0.3)];
                p.code_pages = 18;
            }
            "bodytrack" => {
                p.mix = InstrMix::fp_baseline();
                p.mix.branch = 0.14;
                p.mem = MemPattern {
                    ws_bytes: 8 * MB,
                    stride: 16,
                    random_frac: 0.35,
                    unaligned_frac: 0.005,
                    shared_frac: 0.0,
                    dependent: false,
                };
                p.branches = vec![
                    pattern(0b0110_0101, 8, 0.7),
                    looped(20, 0.3),
                    biased(0.99, 0.2),
                    random(0.6, 0.02),
                ];
                p.code_pages = 44;
            }
            "canneal" => {
                p.mix.load = 0.34;
                p.mix.branch = 0.14;
                p.mem = MemPattern::pointer_chase(48 * MB);
                p.branches = vec![
                    random(0.5, 0.04),
                    pattern(0b0011, 4, 0.7),
                    biased(0.99, 0.45),
                ];
                p.code_pages = 38;
            }
            "dedup" => {
                p.mix.int_alu = 0.46;
                p.mix.int_mul = 0.04;
                p.mix.load = 0.26;
                p.mix.store = 0.12;
                p.mem = MemPattern {
                    ws_bytes: 24 * MB,
                    stride: 64,
                    random_frac: 0.5,
                    unaligned_frac: 0.03,
                    shared_frac: 0.0,
                    dependent: false,
                };
                p.branches = vec![
                    pattern(0b0100_1101, 8, 0.7),
                    biased(0.99, 0.5),
                    random(0.55, 0.02),
                ];
                p.code_pages = 40;
            }
            "ferret" => {
                p.mix = InstrMix::fp_baseline();
                p.mix.branch = 0.13;
                p.mix.indirect = 0.01;
                p.mix.call = 0.04;
                p.mem = MemPattern {
                    ws_bytes: 16 * MB,
                    stride: 16,
                    random_frac: 0.4,
                    unaligned_frac: 0.0,
                    shared_frac: 0.0,
                    dependent: false,
                };
                p.branches = vec![
                    pattern(0b0101_0110, 8, 0.61),
                    biased(0.99, 0.4),
                    looped(12, 0.15),
                    random(0.6, 0.02),
                ];
                p.code_pages = 56;
            }
            "fluidanimate" => {
                p.mix = InstrMix::fp_baseline();
                p.mix.fp_div = 0.025;
                p.mem = MemPattern::streaming(24 * MB, 16);
                p.branches = vec![biased(0.99, 0.6), looped(16, 0.4)];
                p.code_pages = 30;
            }
            "freqmine" => {
                p.mix.int_alu = 0.44;
                p.mix.branch = 0.19;
                p.mix.load = 0.26;
                p.mem = MemPattern {
                    ws_bytes: 24 * MB,
                    stride: 16,
                    random_frac: 0.6,
                    unaligned_frac: 0.0,
                    shared_frac: 0.0,
                    dependent: true,
                };
                p.branches = vec![
                    pattern(0b0101_0011, 8, 0.75),
                    biased(0.99, 0.4),
                    random(0.5, 0.02),
                ];
                p.code_pages = 44;
            }
            "streamcluster" => {
                p.mix = InstrMix::fp_baseline();
                p.mix.load = 0.30;
                p.mem = MemPattern::streaming(48 * MB, 4);
                p.branches = vec![biased(0.99, 0.7), looped(48, 0.3)];
                p.code_pages = 20;
            }
            "swaptions" => {
                p.mix = InstrMix::fp_baseline();
                p.mix.fp_div = 0.035;
                p.mem = MemPattern::streaming(512 * KB, 8);
                p.branches = vec![biased(0.99, 0.6), looped(20, 0.25), pattern(0b01, 2, 0.26)];
                p.code_pages = 22;
            }
            other => unreachable!("unknown PARSEC app {other}"),
        }
        if mt {
            concurrent(p);
        }
    })
}

fn parsec() -> Vec<WorkloadSpec> {
    let apps = [
        "blackscholes",
        "bodytrack",
        "canneal",
        "dedup",
        "ferret",
        "fluidanimate",
        "freqmine",
        "streamcluster",
        "swaptions",
    ];
    let mut out = Vec::new();
    for app in apps {
        out.push(parsec_app(app, 1));
        out.push(parsec_app(app, 4));
    }
    out
}

// ---------------------------------------------------------------------------
// Dhrystone & Whetstone (2)
// ---------------------------------------------------------------------------

fn classics() -> Vec<WorkloadSpec> {
    vec![
        wl("dhry-dhrystone", Suite::Dhrystone, 1, |p| {
            p.mix.int_alu = 0.48;
            p.mix.branch = 0.15;
            p.mix.call = 0.05;
            p.mix.load = 0.20;
            p.mem = MemPattern::streaming(4 * KB, 4);
            p.branches = vec![biased(0.99, 0.4), looped(10, 0.3), pattern(0b0101, 4, 0.53)];
            p.code_pages = 3;
        }),
        wl("whet-whetstone", Suite::Whetstone, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_div = 0.05;
            p.mix.fp_alu = 0.36;
            p.mem = MemPattern::streaming(8 * KB, 8);
            p.branches = vec![looped(32, 0.7), biased(0.99, 0.3)];
            p.code_pages = 3;
        }),
    ]
}

// ---------------------------------------------------------------------------
// LMBench (10) — power-modelling extras.
// ---------------------------------------------------------------------------

fn lmbench() -> Vec<WorkloadSpec> {
    let lat = |name: &str, ws: u64| {
        wl(name, Suite::LmBench, 1, move |p| {
            p.mix.load = 0.48;
            p.mix.int_alu = 0.30;
            p.mix.branch = 0.12;
            p.mix.store = 0.02;
            p.mem = MemPattern::pointer_chase(ws);
            p.branches = vec![looped(256, 1.0)];
            p.code_pages = 1;
        })
    };
    vec![
        lat("lm-lat-mem-rd-16k", 16 * KB),
        lat("lm-lat-mem-rd-128k", 128 * KB),
        lat("lm-lat-mem-rd-1m", MB),
        lat("lm-lat-mem-rd-8m", 8 * MB),
        lat("lm-lat-mem-rd-32m", 32 * MB),
        wl("lm-bw-mem-rd", Suite::LmBench, 1, |p| {
            p.mix.load = 0.60;
            p.mix.int_alu = 0.25;
            p.mix.branch = 0.08;
            p.mem = MemPattern::streaming(32 * MB, 64);
            p.branches = vec![looped(512, 1.0)];
            p.code_pages = 1;
        }),
        wl("lm-bw-mem-wr", Suite::LmBench, 1, |p| {
            p.mix.store = 0.55;
            p.mix.load = 0.05;
            p.mix.int_alu = 0.25;
            p.mem = MemPattern::streaming(32 * MB, 64);
            p.branches = vec![looped(512, 1.0)];
            p.code_pages = 1;
        }),
        wl("lm-bw-mem-cp", Suite::LmBench, 1, |p| {
            p.mix.load = 0.32;
            p.mix.store = 0.30;
            p.mix.int_alu = 0.22;
            p.mem = MemPattern::streaming(32 * MB, 64);
            p.branches = vec![looped(512, 1.0)];
            p.code_pages = 1;
        }),
        wl("lm-lat-ops-int", Suite::LmBench, 1, |p| {
            p.mix.int_alu = 0.50;
            p.mix.int_mul = 0.20;
            p.mix.int_div = 0.10;
            p.mix.load = 0.05;
            p.mix.store = 0.02;
            p.mem = MemPattern::streaming(4 * KB, 4);
            p.branches = vec![looped(1024, 1.0)];
            p.code_pages = 1;
        }),
        wl("lm-lat-ops-fp", Suite::LmBench, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_div = 0.12;
            p.mix.fp_alu = 0.45;
            p.mix.load = 0.05;
            p.mem = MemPattern::streaming(4 * KB, 8);
            p.branches = vec![looped(1024, 1.0)];
            p.code_pages = 1;
        }),
    ]
}

// ---------------------------------------------------------------------------
// Roy Longbottom collection (10) — power-modelling extras.
// ---------------------------------------------------------------------------

fn longbottom() -> Vec<WorkloadSpec> {
    vec![
        wl("rl-dhry2", Suite::RoyLongbottom, 1, |p| {
            p.mix.int_alu = 0.50;
            p.mix.branch = 0.14;
            p.mix.call = 0.04;
            p.mem = MemPattern::streaming(4 * KB, 4);
            p.branches = vec![biased(0.99, 0.6), looped(10, 0.4)];
            p.code_pages = 3;
        }),
        wl("rl-whets-sp", Suite::RoyLongbottom, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_alu = 0.40;
            p.mem = MemPattern::streaming(8 * KB, 4);
            p.branches = vec![looped(32, 0.8), biased(0.99, 0.2)];
            p.code_pages = 2;
        }),
        wl("rl-whets-dp", Suite::RoyLongbottom, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_alu = 0.38;
            p.mix.fp_div = 0.06;
            p.mem = MemPattern::streaming(16 * KB, 8);
            p.branches = vec![looped(32, 0.8), biased(0.99, 0.2)];
            p.code_pages = 2;
        }),
        wl("rl-linpack", Suite::RoyLongbottom, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.fp_alu = 0.36;
            p.mix.load = 0.28;
            p.mem = MemPattern::streaming(MB, 8);
            p.branches = vec![looped(100, 0.9), biased(0.99, 0.1)];
            p.code_pages = 2;
        }),
        wl("rl-livermore", Suite::RoyLongbottom, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.load = 0.26;
            p.mem = MemPattern::streaming(2 * MB, 16);
            p.branches = vec![looped(64, 0.85), pattern(0b0101, 4, 0.26)];
            p.code_pages = 18;
        }),
        wl("rl-memspeed-int", Suite::RoyLongbottom, 1, |p| {
            p.mix.load = 0.44;
            p.mix.store = 0.18;
            p.mix.int_alu = 0.24;
            p.mem = MemPattern::streaming(16 * MB, 32);
            p.branches = vec![looped(256, 1.0)];
            p.code_pages = 1;
        }),
        wl("rl-memspeed-fp", Suite::RoyLongbottom, 1, |p| {
            p.mix = InstrMix::fp_baseline();
            p.mix.load = 0.36;
            p.mix.store = 0.14;
            p.mem = MemPattern::streaming(16 * MB, 32);
            p.branches = vec![looped(256, 1.0)];
            p.code_pages = 1;
        }),
        wl("rl-busspeed", Suite::RoyLongbottom, 1, |p| {
            p.mix.load = 0.55;
            p.mix.int_alu = 0.25;
            p.mem = MemPattern::streaming(64 * MB, 256);
            p.branches = vec![looped(512, 1.0)];
            p.code_pages = 1;
        }),
        wl("rl-neonspeed", Suite::RoyLongbottom, 1, |p| {
            p.mix.simd = 0.40;
            p.mix.load = 0.24;
            p.mix.store = 0.10;
            p.mix.int_alu = 0.16;
            p.mem = MemPattern::streaming(4 * MB, 16);
            p.branches = vec![looped(128, 1.0)];
            p.code_pages = 1;
        }),
        wl("rl-intrate", Suite::RoyLongbottom, 1, |p| {
            p.mix.int_alu = 0.62;
            p.mix.int_mul = 0.08;
            p.mix.load = 0.10;
            p.mem = MemPattern::streaming(8 * KB, 4);
            p.branches = vec![looped(64, 0.8), biased(0.97, 0.2)];
            p.code_pages = 1;
        }),
    ]
}

/// The 45-workload gem5-validation set (§III: MiBench + ParMiBench +
/// PARSEC 1t/4t + Dhrystone + Whetstone).
pub fn validation_suite() -> Vec<WorkloadSpec> {
    let mut v = mibench();
    v.extend(parmibench());
    v.extend(parsec());
    v.extend(classics());
    v
}

/// All 65 workloads (validation set + LMBench + Roy Longbottom) used for
/// power-model building (§V).
pub fn power_suite() -> Vec<WorkloadSpec> {
    let mut v = validation_suite();
    v.extend(lmbench());
    v.extend(longbottom());
    v
}

/// Looks a workload up by its full name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    power_suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::StreamGen;
    use std::collections::HashSet;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(mibench().len(), 17);
        assert_eq!(parmibench().len(), 8);
        assert_eq!(parsec().len(), 18);
        assert_eq!(classics().len(), 2);
        assert_eq!(validation_suite().len(), 45);
        assert_eq!(power_suite().len(), 65);
    }

    #[test]
    fn names_unique_and_prefixed() {
        let all = power_suite();
        let names: HashSet<&str> = all.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names.len(), 65);
        for w in &all {
            assert!(
                w.name.starts_with(w.suite.prefix()),
                "{} should start with {}",
                w.name,
                w.suite.prefix()
            );
        }
    }

    #[test]
    fn thread_counts() {
        let all = power_suite();
        for w in &all {
            match w.suite {
                Suite::ParMiBench => assert_eq!(w.threads, 4, "{}", w.name),
                Suite::Parsec => {
                    let expect = if w.name.ends_with("-4") { 4 } else { 1 };
                    assert_eq!(w.threads, expect, "{}", w.name);
                }
                _ => assert_eq!(w.threads, 1, "{}", w.name),
            }
        }
    }

    #[test]
    fn every_workload_generates() {
        for w in power_suite() {
            let small = w.scaled(0.02); // 4000 instructions
            let n = StreamGen::new(&small).count() as u64;
            assert!(
                n >= small.instructions && n <= small.instructions + 1,
                "{}: generated {n}, wanted {}",
                w.name,
                small.instructions
            );
        }
    }

    #[test]
    fn pathological_workload_is_alternating_dominated() {
        let w = by_name("par-basicmath-rad2deg").unwrap();
        let alt_weight: f64 = w.phases[0]
            .branches
            .iter()
            .filter(|b| matches!(b.behavior, BranchBehavior::Pattern { len: 2, .. }))
            .map(|b| b.weight)
            .sum();
        let total: f64 = w.phases[0].branches.iter().map(|b| b.weight).sum();
        assert!(alt_weight / total > 0.8);
        assert_eq!(w.threads, 4);
    }

    #[test]
    fn by_name_miss_is_none() {
        assert!(by_name("not-a-workload").is_none());
    }

    #[test]
    fn behavioural_diversity_axes_covered() {
        let all = power_suite();
        let has = |f: &dyn Fn(&WorkloadSpec) -> bool| all.iter().any(f);
        // Pointer chasing.
        assert!(has(&|w| w.phases[0].mem.dependent));
        // Large working sets (> 16 MB).
        assert!(has(&|w| w.phases[0].mem.ws_bytes > 16 * MB));
        // Tiny working sets (≤ 8 KB).
        assert!(has(&|w| w.phases[0].mem.ws_bytes <= 8 * KB));
        // FP-heavy.
        assert!(has(&|w| w.phases[0].mix.fp_alu > 0.2));
        // SIMD.
        assert!(has(&|w| w.phases[0].mix.simd > 0.2));
        // Concurrent with barriers.
        assert!(has(&|w| w.phases[0].mix.barrier > 0.0 && w.threads == 4));
        // Large code footprints (ITLB pressure).
        assert!(has(&|w| w.phases[0].code_pages > 40));
        // Unaligned accesses.
        assert!(has(&|w| w.phases[0].mem.unaligned_frac > 0.0));
    }
}
