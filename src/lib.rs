//! # GemStone-rs
//!
//! Hardware-validated CPU performance and energy modelling — a Rust
//! reproduction of Walker et al., *Hardware-Validated CPU Performance and
//! Energy Modelling* (ISPASS 2018).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`stats`] — statistics toolkit (OLS, stepwise selection, correlation,
//!   hierarchical clustering, error metrics).
//! * [`uarch`] — the cycle-approximate CPU timing engine and the
//!   ground-truth / `ex5` model configurations.
//! * [`workloads`] — the 65 synthetic benchmark workloads and the
//!   `lat_mem_rd` micro-benchmark.
//! * [`platform`] — the simulated ODROID-XU3 board (PMU, power sensors,
//!   thermal model, DVFS) and the gem5 simulation driver.
//! * [`powmon`] — empirical PMC-based power modelling.
//! * [`core`] — the GemStone pipeline: experiments, collation, statistical
//!   error identification, power/energy analysis, reporting.
//!
//! # Quick start
//!
//! ```no_run
//! use gemstone::prelude::*;
//!
//! // Validate the old ex5_big model against the (simulated) board.
//! let mut opts = PipelineOptions::default();
//! opts.experiment.workload_scale = 0.2;
//! let report = GemStone::new(opts).run()?;
//! println!("{}", report.render());
//! # Ok::<(), gemstone::core::GemStoneError>(())
//! ```
//!
//! See `examples/` for focused walk-throughs: `quickstart`,
//! `validate_model`, `build_power_model`, `dvfs_explorer` and
//! `find_error_sources`.

pub use gemstone_core as core;
pub use gemstone_obs as obs;
pub use gemstone_platform as platform;
pub use gemstone_powmon as powmon;
pub use gemstone_stats as stats;
pub use gemstone_uarch as uarch;
pub use gemstone_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use gemstone_core::collate::Collated;
    pub use gemstone_core::experiment::{run_validation, ExperimentConfig};
    pub use gemstone_core::pipeline::{GemStone, GemStoneReport, PipelineOptions};
    pub use gemstone_platform::board::OdroidXu3;
    pub use gemstone_platform::dvfs::Cluster;
    pub use gemstone_platform::gem5sim::{Gem5Model, Gem5Sim};
    pub use gemstone_powmon::model::{EventExpr, PowerModel};
    pub use gemstone_uarch::configs;
    pub use gemstone_uarch::core::Engine;
    pub use gemstone_workloads::suites;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_resolve() {
        use crate::prelude::*;
        let _ = ExperimentConfig::default();
        let _ = OdroidXu3::new();
        assert_eq!(Cluster::BigA15.name(), "Cortex-A15");
        assert_eq!(suites::power_suite().len(), 65);
    }
}
