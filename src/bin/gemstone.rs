//! The `gemstone` command-line tool.
//!
//! Subcommands mirror the paper's workflows:
//!
//! ```text
//! gemstone validate  [--scale S] [--clusters K] [--save FILE]   full pipeline (no power)
//! gemstone report    [--scale S] [--save FILE]                  full pipeline incl. power
//! gemstone power     [--scale S] [--cluster a7|a15]             build a §V power model
//! gemstone ablate    [--scale S]                                per-error ablation study
//! gemstone suitability [--scale S] [--max-mape PCT]             §VII use-case check
//! gemstone improve   [--scale S] [--target-mape PCT]            guided improvement loop
//! gemstone stats     <workload> [--model old|fixed|little]      dump gem5-style stats.txt
//! ```

use gemstone::core::analysis::{ablation, improve, suitability};
use gemstone::core::pipeline::{GemStone, PipelineOptions};
use gemstone::core::{collate::Collated, experiment, persist, report::Table};
use gemstone::platform::simcache::SimCache;
use gemstone::powmon::{dataset, model::PowerModel, selection};
use gemstone::prelude::*;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.insert(key.to_string(), value.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn scale(&self) -> f64 {
        self.flags
            .get("scale")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gemstone <validate|report|power|ablate|suitability|stats> [flags]\n\
         \n\
         validate     [--scale S] [--clusters K] [--save FILE]  time-error validation pipeline\n\
         report       [--scale S] [--save FILE]                 full pipeline incl. power models\n\
         power        [--scale S] [--cluster a7|a15]            build and print a power model\n\
         ablate       [--scale S]                               per-spec-error ablation study\n\
         suitability  [--scale S] [--max-mape PCT]              use-case suitability check\n\
         improve      [--scale S] [--target-mape PCT]           guided diagnose-and-fix loop\n\
         stats <workload> [--model old|fixed|little]            gem5-style stats.txt dump"
    );
    ExitCode::from(2)
}

fn run_pipeline(args: &Args, with_power: bool) -> ExitCode {
    let mut opts = PipelineOptions::default();
    opts.experiment.workload_scale = args.scale();
    opts.with_power = with_power;
    opts.clusters_k = args
        .get("clusters")
        .and_then(|v| v.parse().ok())
        .or(Some(16));
    match GemStone::new(opts).run() {
        Ok(report) => {
            println!("{}", report.render());
            if let Some(path) = args.get("save") {
                // Re-run collation quickly is wasteful; persist what we can:
                // the experiment data is not retained by the report, so save
                // a fresh collation at the same scale.
                let cfg = experiment::ExperimentConfig {
                    workload_scale: args.scale(),
                    ..experiment::ExperimentConfig::default()
                };
                let collated = Collated::build(&experiment::run_validation(&cfg));
                if let Err(e) = persist::save_collated(&collated, path) {
                    eprintln!("save failed: {e}");
                    return ExitCode::FAILURE;
                }
                println!("collated dataset saved to {path}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_power(args: &Args) -> ExitCode {
    let cluster = match args.get("cluster").unwrap_or("a15") {
        "a7" => Cluster::LittleA7,
        _ => Cluster::BigA15,
    };
    let board = OdroidXu3::new();
    let specs: Vec<_> = suites::power_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    let ds = dataset::collect(&board, cluster, &specs, cluster.frequencies());
    let opts = selection::SelectionOptions {
        restricted_pool: Some(selection::gem5_compatible_pool()),
        ..selection::SelectionOptions::default()
    };
    let sel = match selection::select_events(&ds, &opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("event selection failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match PowerModel::fit(&ds, &sel.terms) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("fit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match model.quality(&ds) {
        Ok(q) => println!(
            "{}: MAPE {:.2}%  SER {:.3} W  adj.R² {:.3}  VIF {:.1}  (n={})\n\n{}",
            cluster.name(),
            q.mape,
            q.ser,
            q.adj_r_squared,
            q.mean_vif,
            q.n,
            model.equations()
        ),
        Err(e) => {
            eprintln!("quality evaluation failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run_ablate(args: &Args) -> ExitCode {
    let board = OdroidXu3::new();
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    match ablation::analyse(&board, &workloads, 1.0e9) {
        Ok(ab) => {
            let mut t = Table::new(vec!["variant", "MAPE %", "MPE %"]);
            t.row(vec![
                ab.baseline.label.clone(),
                format!("{:.1}", ab.baseline.mape),
                format!("{:+.1}", ab.baseline.mpe),
            ]);
            for v in ab.fix_one.iter().chain(ab.keep_one.iter()) {
                t.row(vec![
                    v.label.clone(),
                    format!("{:.1}", v.mape),
                    format!("{:+.1}", v.mpe),
                ]);
            }
            t.row(vec![
                ab.truth_config.label.clone(),
                format!("{:.1}", ab.truth_config.mape),
                format!("{:+.1}", ab.truth_config.mpe),
            ]);
            println!("{}", t.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ablation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_suitability(args: &Args) -> ExitCode {
    let max_mape: f64 = args
        .get("max-mape")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let cfg = experiment::ExperimentConfig {
        workload_scale: args.scale(),
        ..experiment::ExperimentConfig::default()
    };
    let collated = Collated::build(&experiment::run_validation(&cfg));
    let cases = vec![
        suitability::UseCase::timing(format!("all workloads (≤{max_mape} %)"), max_mape),
        suitability::UseCase::timing(format!("PARSEC only (≤{max_mape} %)"), max_mape)
            .with_workloads(&["parsec-"]),
        suitability::UseCase::timing(format!("control-heavy (≤{max_mape} %)"), max_mape)
            .with_workloads(&["mi-bitcount", "mi-stringsearch", "par-"]),
    ];
    let mut t = Table::new(vec!["model", "use-case", "n", "MAPE %", "verdict"]);
    for model in [
        Gem5Model::Ex5BigOld,
        Gem5Model::Ex5BigFixed,
        Gem5Model::Ex5Little,
    ] {
        match suitability::assess(&collated, model, 1.0e9, &cases) {
            Ok(verdicts) => {
                for v in verdicts {
                    t.row(vec![
                        model.name().to_string(),
                        v.use_case.clone(),
                        v.n.to_string(),
                        format!("{:.1}", v.time_mape),
                        if v.suitable { "SUITABLE" } else { "unsuitable" }.to_string(),
                    ]);
                }
            }
            Err(e) => {
                eprintln!("assessment failed for {}: {e}", model.name());
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", t.render());
    ExitCode::SUCCESS
}

fn run_improve(args: &Args) -> ExitCode {
    let target: f64 = args
        .get("target-mape")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let board = OdroidXu3::new();
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    match improve::improve_model(&board, &workloads, 1.0e9, target, 8) {
        Ok(imp) => {
            let mut t = Table::new(vec!["iter", "MAPE %", "MPE %", "fix applied"]);
            for it in &imp.iterations {
                t.row(vec![
                    it.index.to_string(),
                    format!("{:.1}", it.mape),
                    format!("{:+.1}", it.mpe),
                    it.fixed.unwrap_or("stop").to_string(),
                ]);
            }
            println!("{}", t.render());
            println!("final MAPE {:.1} %", imp.final_mape);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("improvement loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_stats(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else {
        eprintln!("stats needs a workload name (see `suites::power_suite()` for the list)");
        return ExitCode::from(2);
    };
    let Some(spec) = suites::by_name(name) else {
        eprintln!("unknown workload '{name}'");
        return ExitCode::FAILURE;
    };
    let model = match args.get("model").unwrap_or("old") {
        "fixed" => Gem5Model::Ex5BigFixed,
        "little" => Gem5Model::Ex5Little,
        _ => Gem5Model::Ex5BigOld,
    };
    let t0 = std::time::Instant::now();
    let run = Gem5Sim::run(&spec.scaled(args.scale()), model, 1.0e9);
    let sim_micros = t0.elapsed().as_micros() as u64;
    print!("{}", run.stats.to_stats_txt());
    // Execution-layer counters, in the same aligned `name value` style.
    // `Gem5Sim::run` consults the process-wide caches, so these reflect
    // whether this invocation hit the memo / replayed a packed trace.
    let cache = SimCache::global();
    let traces = cache.trace_cache();
    for (name, value) in [
        ("gemstone.simcache.hits", cache.hits()),
        ("gemstone.simcache.misses", cache.misses()),
        ("gemstone.simcache.entries", cache.len() as u64),
        ("gemstone.tracecache.hits", traces.hits()),
        ("gemstone.tracecache.misses", traces.misses()),
        ("gemstone.tracecache.evictions", traces.evictions()),
        ("gemstone.tracecache.bytes", traces.bytes() as u64),
        ("gemstone.sim.wall_micros", sim_micros),
    ] {
        println!("{name:<60} {value:>20}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "validate" => run_pipeline(&args, false),
        "report" => run_pipeline(&args, true),
        "power" => run_power(&args),
        "ablate" => run_ablate(&args),
        "suitability" => run_suitability(&args),
        "improve" => run_improve(&args),
        "stats" => run_stats(&args),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let a = Args::parse(&strs(&["mi-sha", "--scale", "0.5", "--model", "old"])).unwrap();
        assert_eq!(a.positional, vec!["mi-sha"]);
        assert_eq!(a.scale(), 0.5);
        assert_eq!(a.get("model"), Some("old"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn args_default_scale_and_errors() {
        let a = Args::parse(&strs(&[])).unwrap();
        assert_eq!(a.scale(), 1.0);
        assert!(Args::parse(&strs(&["--scale"])).is_err());
        // Unparseable scale falls back to the default.
        let a = Args::parse(&strs(&["--scale", "not-a-number"])).unwrap();
        assert_eq!(a.scale(), 1.0);
    }
}
