//! The `gemstone` command-line tool.
//!
//! Subcommands mirror the paper's workflows:
//!
//! ```text
//! gemstone validate  [--scale S] [--clusters K] [--save FILE]   full pipeline (no power)
//! gemstone report    [--scale S] [--save FILE]                  full pipeline incl. power
//! gemstone collect   [--scale S] [--checkpoint F] [--resume]    resilient sweep with retry,
//!                    [--save F] [--csv F] [--retries N]         quarantine, checkpoint/resume
//!                    [--min-coverage FRAC]                      (faults via GEMSTONE_FAULTS)
//! gemstone power     [--scale S] [--cluster a7|a15]             build a §V power model
//! gemstone ablate    [--scale S]                                per-error ablation study
//! gemstone suitability [--scale S] [--max-mape PCT]             §VII use-case check
//! gemstone improve   [--scale S] [--target-mape PCT]            guided improvement loop
//! gemstone stats     <workload> [--model old|fixed|little]      dump gem5-style stats.txt
//! gemstone profile   <workload> [--model M] [--freq HZ]         simulator self-profile
//! gemstone perf      report <journal.jsonl>                     aggregated span profile
//! gemstone perf      diff <before> <after> [--tolerance PCT]    regression gate over two
//!                                                               journals or BENCH_*.json
//! ```
//!
//! `validate`, `report`, `collect`, and `profile` additionally accept observability
//! outputs: `--metrics FILE` (Prometheus text), `--trace FILE` (Chrome
//! trace-event JSON, load via `chrome://tracing` or Perfetto), `--jsonl
//! FILE` (one JSON object per metric sample and span), and
//! `--flight-record FILE` (the flight-recorder ring of recent span/note
//! events as JSONL — the same dump the fault paths emit automatically).
//! Any of these flips the process-wide `GEMSTONE_OBS` switch on for the
//! run.
//!
//! `validate`, `report`, `collect`, `stats` and `profile` accept
//! `--fidelity atomic|approx|sampled` to pick the execution tier; without
//! the flag the tier comes from `GEMSTONE_FIDELITY` (default `approx`).
//! The sampled tier's geometry is controlled by `GEMSTONE_SAMPLE_INTERVAL`,
//! `GEMSTONE_SAMPLE_WINDOW` and `GEMSTONE_SAMPLE_WARMUP`.
//!
//! `validate`, `report`, `collect` and `profile` accept `--segments N` to
//! cap the per-replay worker count of time-parallel segmented simulation
//! (`0` disables it; the default is the machine's parallelism). The knob
//! only affects wall-clock time — results are bit-identical at any value.
//!
//! Exit codes: 0 success, 1 runtime failure, 2 usage error, 3 unknown
//! flag for the given subcommand.

use gemstone::core::analysis::{ablation, improve, suitability};
use gemstone::core::pipeline::{GemStone, PipelineOptions};
use gemstone::core::{collate::Collated, experiment, persist, report::Table};
use gemstone::platform::simcache::SimCache;
use gemstone::powmon::{fitting, selection};
use gemstone::prelude::*;
use gemstone::uarch::backend::{Fidelity, SampleParams, TierConfig};
use gemstone::workloads::spec::WorkloadSpec;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs after the subcommand, plus a
/// per-subcommand list of valueless boolean flags (e.g. `--resume`).
struct Args {
    flags: BTreeMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String], bool_flags: &[&str]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if bool_flags.contains(&key) {
                    flags.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.insert(key.to_string(), value.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn scale(&self) -> f64 {
        self.flags
            .get("scale")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// First flag not in `allowed`, if any — callers turn this into exit
    /// code 3 so typos don't silently become default behaviour.
    fn unknown_flag(&self, allowed: &[&str]) -> Option<&str> {
        self.flags
            .keys()
            .map(String::as_str)
            .find(|k| !allowed.contains(k))
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gemstone <validate|report|collect|serve|power|ablate|suitability|improve|stats|profile|perf> [flags]\n\
         \n\
         validate     [--scale S] [--clusters K] [--save FILE]  time-error validation pipeline\n\
         report       [--scale S] [--save FILE]                 full pipeline incl. power models\n\
         collect      [--scale S] [--checkpoint FILE] [--resume] [--save FILE] [--csv FILE]\n\
         \u{20}            [--retries N] [--min-coverage FRAC]       resilient characterisation sweep:\n\
         \u{20}                                                      retry faults, quarantine dead\n\
         \u{20}                                                      workloads, checkpoint progress\n\
         serve        [--addr HOST:PORT] [--workers N] [--queue-dir DIR]\n\
         \u{20}            [--queue-limit N] [--min-coverage FRAC]    validation-as-a-service daemon:\n\
         \u{20}                                                      POST /jobs, GET /jobs/<id>,\n\
         \u{20}                                                      GET /metrics, GET /healthz;\n\
         \u{20}                                                      duplicate jobs coalesce, the\n\
         \u{20}                                                      queue survives restarts\n\
         power        [--scale S] [--cluster a7|a15]            build and print a power model\n\
         ablate       [--scale S]                               per-spec-error ablation study\n\
         suitability  [--scale S] [--max-mape PCT]              use-case suitability check\n\
         improve      [--scale S] [--target-mape PCT]           guided diagnose-and-fix loop\n\
         stats <workload> [--model old|fixed|little]            gem5-style stats.txt dump\n\
         profile <workload> [--model old|fixed|little] [--freq HZ]\n\
         \u{20}                                                      simulator self-profile:\n\
         \u{20}                                                      MIPS, event rates, instr mix\n\
         perf report <journal.jsonl>                            aggregated span-tree profile\n\
         perf diff <before> <after> [--tolerance PCT]           regression gate over two JSONL\n\
         \u{20}                                                      journals or BENCH_*.json\n\
         \u{20}                                                      records (default 20%)\n\
         \n\
         validate, report, collect, stats and profile also accept\n\
         \u{20}  --fidelity atomic|approx|sampled   execution tier (default: GEMSTONE_FIDELITY\n\
         \u{20}                                     or approx; sampled-tier geometry via\n\
         \u{20}                                     GEMSTONE_SAMPLE_{{INTERVAL,WINDOW,WARMUP}})\n\
         \n\
         validate, report, collect and profile also accept\n\
         \u{20}  --segments N     cap segmented-replay workers (0 disables;\n\
         \u{20}                   default: machine parallelism; results are\n\
         \u{20}                   bit-identical at any value)\n\
         \n\
         validate, report, collect and profile also accept observability outputs:\n\
         \u{20}  --metrics FILE        Prometheus text-format metrics dump\n\
         \u{20}  --trace FILE          Chrome trace-event JSON (chrome://tracing)\n\
         \u{20}  --jsonl FILE          JSONL stream of metric samples and spans\n\
         \u{20}  --flight-record FILE  flight-recorder ring (recent span/note\n\
         \u{20}                        events) as JSONL\n\
         \n\
         `collect` injects faults when GEMSTONE_FAULTS is set\n\
         (e.g. GEMSTONE_FAULTS=\"seed=7,transient=0.3,fails=2\")\n\
         \n\
         exit codes: 0 ok, 1 failure, 2 usage, 3 unknown flag"
    );
    ExitCode::from(2)
}

/// Observability export files requested on the command line. Requesting
/// any of them enables the obs layer for the run (same effect as setting
/// `GEMSTONE_OBS=1`).
struct ObsOutputs {
    metrics: Option<String>,
    trace: Option<String>,
    jsonl: Option<String>,
    flight: Option<String>,
}

impl ObsOutputs {
    fn from_args(args: &Args) -> ObsOutputs {
        ObsOutputs {
            metrics: args.get("metrics").map(String::from),
            trace: args.get("trace").map(String::from),
            jsonl: args.get("jsonl").map(String::from),
            flight: args.get("flight-record").map(String::from),
        }
    }

    fn any(&self) -> bool {
        self.metrics.is_some()
            || self.trace.is_some()
            || self.jsonl.is_some()
            || self.flight.is_some()
    }

    /// Turns the obs layer on before the run when any output was asked for.
    fn enable(&self) {
        if self.any() {
            gemstone_obs::set_enabled(true);
        }
    }

    /// Writes every requested file. Called once, after the run, so the
    /// registry and span log hold the whole execution.
    fn write(&self) -> Result<(), String> {
        if !self.any() {
            return Ok(());
        }
        sync_cache_gauges();
        let registry = gemstone_obs::Registry::global();
        let events = gemstone_obs::SpanLog::global().snapshot();
        let dump = |path: &str, what: &str, body: String| -> Result<(), String> {
            std::fs::write(path, body).map_err(|e| format!("writing {what} to {path}: {e}"))?;
            eprintln!("{what} written to {path}");
            Ok(())
        };
        if let Some(p) = &self.metrics {
            dump(p, "metrics", gemstone_obs::export::prometheus(registry))?;
        }
        if let Some(p) = &self.trace {
            dump(p, "trace", gemstone_obs::export::chrome_trace(&events))?;
        }
        if let Some(p) = &self.jsonl {
            dump(p, "jsonl", gemstone_obs::export::jsonl(registry, &events))?;
        }
        if let Some(p) = &self.flight {
            dump(
                p,
                "flight record",
                gemstone_obs::flight::FlightRecorder::global().dump_jsonl(),
            )?;
        }
        Ok(())
    }
}

/// Counters update continuously, but occupancy numbers (entry counts,
/// resident bytes) only exist as method calls on the caches — mirror them
/// into gauges right before a dump.
fn sync_cache_gauges() {
    let registry = gemstone_obs::Registry::global();
    let cache = SimCache::global();
    registry.gauge("simcache.entries").set(cache.len() as f64);
    let traces = cache.trace_cache();
    registry
        .gauge("trace_cache.entries")
        .set(traces.len() as f64);
    registry
        .gauge("trace_cache.bytes")
        .set(traces.bytes() as f64);
}

/// Workload lookup for `stats`/`profile`: exact name first, then a unique
/// substring match over the power suite (so `profile dhrystone` finds
/// `dhry-dhrystone` without anyone memorising suite prefixes).
fn resolve_workload(name: &str) -> Result<WorkloadSpec, String> {
    if let Some(spec) = suites::by_name(name) {
        return Ok(spec);
    }
    let suite = suites::power_suite();
    let matches: Vec<&WorkloadSpec> = suite.iter().filter(|w| w.name.contains(name)).collect();
    match matches.len() {
        1 => Ok(matches[0].clone()),
        0 => Err(format!(
            "unknown workload '{name}' (see `gemstone stats` docs for the suite list)"
        )),
        _ => Err(format!(
            "ambiguous workload '{name}': matches {}",
            matches
                .iter()
                .map(|w| w.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

fn parse_model(args: &Args) -> Gem5Model {
    match args.get("model").unwrap_or("old") {
        "fixed" => Gem5Model::Ex5BigFixed,
        "little" => Gem5Model::Ex5Little,
        _ => Gem5Model::Ex5BigOld,
    }
}

/// Execution tier for the run. `--fidelity` wins over `GEMSTONE_FIDELITY`;
/// the sampled tier's geometry always comes from the `GEMSTONE_SAMPLE_*`
/// environment knobs. An unrecognised value is a usage error (exit 2),
/// not a silent fall-back to the default tier.
fn parse_fidelity(args: &Args) -> Result<TierConfig, String> {
    match args.get("fidelity") {
        None => Ok(TierConfig::from_env()),
        Some(v) => {
            let fidelity: Fidelity = v
                .parse()
                .map_err(|e| format!("invalid --fidelity value: {e}"))?;
            Ok(TierConfig {
                fidelity,
                sample: SampleParams::from_env(),
            })
        }
    }
}

/// Applies `--segments N` by exporting `GEMSTONE_SEGMENTS` for the engine
/// layer, which caches the knob on first use — so this must run before
/// the first replay. `0` disables segmentation; garbage is a usage error
/// (exit 2), not a silent fall-back.
fn apply_segments(args: &Args) -> Result<(), String> {
    let Some(v) = args.get("segments") else {
        return Ok(());
    };
    let n: usize = v
        .parse()
        .map_err(|e| format!("invalid --segments value '{v}': {e}"))?;
    std::env::set_var(gemstone::uarch::segment::SEGMENTS_ENV, n.to_string());
    Ok(())
}

fn run_pipeline(args: &Args, with_power: bool) -> ExitCode {
    let outputs = ObsOutputs::from_args(args);
    outputs.enable();
    let fidelity = match parse_fidelity(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mut opts = PipelineOptions::default();
    opts.experiment.workload_scale = args.scale();
    opts.experiment.fidelity = fidelity;
    opts.with_power = with_power;
    opts.clusters_k = args
        .get("clusters")
        .and_then(|v| v.parse().ok())
        .or(Some(16));
    match GemStone::new(opts).run() {
        Ok(report) => {
            println!("{}", report.render());
            if let Some(path) = args.get("save") {
                // Re-run collation quickly is wasteful; persist what we can:
                // the experiment data is not retained by the report, so save
                // a fresh collation at the same scale.
                let cfg = experiment::ExperimentConfig {
                    workload_scale: args.scale(),
                    fidelity,
                    ..experiment::ExperimentConfig::default()
                };
                let collated = Collated::build(&experiment::run_validation(&cfg));
                if let Err(e) = persist::save_collated(&collated, path) {
                    eprintln!("save failed: {e}");
                    return ExitCode::FAILURE;
                }
                println!("collated dataset saved to {path}");
            }
            if let Err(e) = outputs.write() {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `gemstone collect`: the resilient characterisation sweep. Runs the
/// validation experiments with per-operation retries, quarantines
/// workloads whose retry budget is exhausted, and (with `--checkpoint`)
/// persists progress after every workload so `--resume` continues a killed
/// run — bit-identical to an uninterrupted one.
fn run_collect(args: &Args) -> ExitCode {
    use gemstone::core::resilience::{collect_resilient, ResilienceOptions};

    let outputs = ObsOutputs::from_args(args);
    outputs.enable();
    let fidelity = match parse_fidelity(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let cfg = experiment::ExperimentConfig {
        workload_scale: args.scale(),
        fidelity,
        ..experiment::ExperimentConfig::default()
    };
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    let mut opts = ResilienceOptions {
        checkpoint: args.get("checkpoint").map(std::path::PathBuf::from),
        resume: args.has("resume"),
        ..ResilienceOptions::default()
    };
    if let Some(n) = args.get("retries").and_then(|v| v.parse().ok()) {
        opts.retry.max_attempts = n;
    }
    if let Some(m) = args.get("min-coverage").and_then(|v| v.parse().ok()) {
        opts.min_coverage = m;
    }
    if opts.resume && opts.checkpoint.is_none() {
        eprintln!("--resume needs --checkpoint FILE to resume from");
        return ExitCode::from(2);
    }

    let outcome = match collect_resilient(&cfg, workloads, &opts) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("collect failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", outcome.coverage.render());
    println!("records: {}", outcome.collated.records.len());
    if let Some(path) = args.get("save") {
        if let Err(e) = persist::save_collated(&outcome.collated, path) {
            eprintln!("save failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("collated dataset saved to {path}");
    }
    if let Some(path) = args.get("csv") {
        if let Err(e) = persist::export_csv(&outcome.collated, path) {
            eprintln!("csv export failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("csv written to {path}");
    }
    if let Err(e) = outputs.write() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_power(args: &Args) -> ExitCode {
    let cluster = match args.get("cluster").unwrap_or("a15") {
        "a7" => Cluster::LittleA7,
        _ => Cluster::BigA15,
    };
    let specs: Vec<_> = suites::power_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    // The same fallible library entry the `power-model` jobs of
    // `gemstone serve` run — the CLI is just one more client of it.
    match fitting::fit_cluster_model(
        &OdroidXu3::new(),
        cluster,
        &specs,
        &selection::SelectionOptions::gem5_restricted(),
    ) {
        Ok(fitted) => {
            let q = &fitted.quality;
            println!(
                "{}: MAPE {:.2}%  SER {:.3} W  adj.R² {:.3}  VIF {:.1}  (n={})\n\n{}",
                cluster.name(),
                q.mape,
                q.ser,
                q.adj_r_squared,
                q.mean_vif,
                q.n,
                fitted.model.equations()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("power modelling failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_serve(args: &Args) -> ExitCode {
    use gemstone::core::service::{serve, Service, ServiceConfig};

    let addr = args.get("addr").unwrap_or("127.0.0.1:8323");
    let mut cfg = ServiceConfig {
        queue_dir: args
            .get("queue-dir")
            .map(Into::into)
            .unwrap_or_else(|| std::env::temp_dir().join("gemstone-serve")),
        ..ServiceConfig::default()
    };
    if let Some(w) = args.get("workers") {
        match w.parse() {
            Ok(n) => cfg.workers = n,
            Err(_) => {
                eprintln!("--workers must be an integer, got {w:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(n) = args.get("queue-limit") {
        match n.parse() {
            Ok(n) if n > 0 => cfg.queue_limit = n,
            _ => {
                eprintln!("--queue-limit must be a positive integer, got {n:?}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(m) = args.get("min-coverage") {
        match m.parse::<f64>() {
            Ok(v) if (0.0..=1.0).contains(&v) => cfg.min_coverage = v,
            _ => {
                eprintln!("--min-coverage must be in [0,1], got {m:?}");
                return ExitCode::from(2);
            }
        }
    }

    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The service layer reports through the obs registry (`/metrics`), so
    // turn the registry on for the daemon's lifetime.
    gemstone_obs::set_enabled(true);
    let svc = match Service::open(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open queue {}: {e}", cfg.queue_dir.display());
            return ExitCode::FAILURE;
        }
    };
    // The smoke tests (and humans) wait for this line before submitting.
    println!(
        "gemstone serve: listening on http://{} ({} workers, queue {})",
        listener
            .local_addr()
            .map_or_else(|_| addr.to_string(), |a| a.to_string()),
        cfg.workers,
        cfg.queue_dir.display()
    );
    match serve(&svc, &listener) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_ablate(args: &Args) -> ExitCode {
    let board = OdroidXu3::new();
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    match ablation::analyse(&board, &workloads, 1.0e9) {
        Ok(ab) => {
            let mut t = Table::new(vec!["variant", "MAPE %", "MPE %"]);
            t.row(vec![
                ab.baseline.label.clone(),
                format!("{:.1}", ab.baseline.mape),
                format!("{:+.1}", ab.baseline.mpe),
            ]);
            for v in ab.fix_one.iter().chain(ab.keep_one.iter()) {
                t.row(vec![
                    v.label.clone(),
                    format!("{:.1}", v.mape),
                    format!("{:+.1}", v.mpe),
                ]);
            }
            t.row(vec![
                ab.truth_config.label.clone(),
                format!("{:.1}", ab.truth_config.mape),
                format!("{:+.1}", ab.truth_config.mpe),
            ]);
            println!("{}", t.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ablation failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_suitability(args: &Args) -> ExitCode {
    let max_mape: f64 = args
        .get("max-mape")
        .and_then(|v| v.parse().ok())
        .unwrap_or(20.0);
    let cfg = experiment::ExperimentConfig {
        workload_scale: args.scale(),
        ..experiment::ExperimentConfig::default()
    };
    let collated = Collated::build(&experiment::run_validation(&cfg));
    let cases = vec![
        suitability::UseCase::timing(format!("all workloads (≤{max_mape} %)"), max_mape),
        suitability::UseCase::timing(format!("PARSEC only (≤{max_mape} %)"), max_mape)
            .with_workloads(&["parsec-"]),
        suitability::UseCase::timing(format!("control-heavy (≤{max_mape} %)"), max_mape)
            .with_workloads(&["mi-bitcount", "mi-stringsearch", "par-"]),
    ];
    let mut t = Table::new(vec!["model", "use-case", "n", "MAPE %", "verdict"]);
    for model in [
        Gem5Model::Ex5BigOld,
        Gem5Model::Ex5BigFixed,
        Gem5Model::Ex5Little,
    ] {
        match suitability::assess(&collated, model, 1.0e9, &cases) {
            Ok(verdicts) => {
                for v in verdicts {
                    t.row(vec![
                        model.name().to_string(),
                        v.use_case.clone(),
                        v.n.to_string(),
                        format!("{:.1}", v.time_mape),
                        if v.suitable { "SUITABLE" } else { "unsuitable" }.to_string(),
                    ]);
                }
            }
            Err(e) => {
                eprintln!("assessment failed for {}: {e}", model.name());
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", t.render());
    ExitCode::SUCCESS
}

fn run_improve(args: &Args) -> ExitCode {
    let target: f64 = args
        .get("target-mape")
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let board = OdroidXu3::new();
    let workloads: Vec<_> = suites::validation_suite()
        .iter()
        .map(|w| w.scaled(args.scale()))
        .collect();
    match improve::improve_model(&board, &workloads, 1.0e9, target, 8) {
        Ok(imp) => {
            let mut t = Table::new(vec!["iter", "MAPE %", "MPE %", "fix applied"]);
            for it in &imp.iterations {
                t.row(vec![
                    it.index.to_string(),
                    format!("{:.1}", it.mape),
                    format!("{:+.1}", it.mpe),
                    it.fixed.unwrap_or("stop").to_string(),
                ]);
            }
            println!("{}", t.render());
            println!("final MAPE {:.1} %", imp.final_mape);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("improvement loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_stats(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else {
        eprintln!("stats needs a workload name (see `suites::power_suite()` for the list)");
        return ExitCode::from(2);
    };
    let spec = match resolve_workload(name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let model = parse_model(args);
    let tier = match parse_fidelity(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let t0 = std::time::Instant::now();
    // One fused grid replay covers the model's whole DVFS column; the
    // stats dump below is the 1 GHz lane (bit-identical to a scalar run
    // at 1 GHz), and the grid counters record what the fusion did.
    let freqs = model.cluster().frequencies();
    let runs = Gem5Sim::run_grid_tier(&spec.scaled(args.scale()), model, freqs, tier);
    let sim_micros = t0.elapsed().as_micros() as u64;
    let run = runs.iter().find(|r| r.freq_hz == 1.0e9).unwrap_or(&runs[0]);
    print!("{}", run.stats.to_stats_txt());
    // Execution-layer counters, in the same aligned `name value` style.
    // `Gem5Sim::run_grid_tier` consults the process-wide caches, so these
    // reflect whether this invocation hit the memo / replayed a packed
    // trace / fused the frequency column.
    let cache = SimCache::global();
    let traces = cache.trace_cache();
    let registry = gemstone_obs::Registry::global();
    for (name, value) in [
        ("gemstone.simcache.hits", cache.hits()),
        ("gemstone.simcache.misses", cache.misses()),
        ("gemstone.simcache.entries", cache.len() as u64),
        ("gemstone.simcache.grid_fills", cache.grid_fills()),
        ("gemstone.tracecache.hits", traces.hits()),
        ("gemstone.tracecache.misses", traces.misses()),
        ("gemstone.tracecache.evictions", traces.evictions()),
        ("gemstone.tracecache.bytes", traces.bytes() as u64),
        (
            "gemstone.engine.grid.replays",
            registry.counter("engine.grid.replays").get(),
        ),
        (
            "gemstone.engine.grid.lanes",
            registry.counter("engine.grid.lanes").get(),
        ),
        (
            "gemstone.engine.segment.runs",
            registry.counter("engine.segment.runs").get(),
        ),
        (
            "gemstone.engine.segment.snapshots",
            registry.counter("engine.segment.snapshots").get(),
        ),
        (
            "gemstone.engine.segment.splices",
            registry.counter("engine.segment.splices").get(),
        ),
        ("gemstone.sim.wall_micros", sim_micros),
    ] {
        println!("{name:<60} {value:>20}");
    }
    // Two-level scheduler: token-pool occupancy plus the wait-latency
    // histogram quantiles (microseconds), and the sweep queue gauge.
    let pool_wait = registry.histogram(
        "tokenpool.wait.seconds",
        gemstone_obs::registry::log2_time_bounds(),
    );
    let wait_us = |q: f64| {
        pool_wait
            .quantile(q)
            .map_or_else(|| "-".to_string(), |s| format!("{:.1}", s * 1.0e6))
    };
    for (name, value) in [
        (
            "gemstone.tokenpool.permits.held",
            format!("{:.0}", registry.gauge("tokenpool.permits.held").get()),
        ),
        (
            "gemstone.tokenpool.permits.waiting",
            format!("{:.0}", registry.gauge("tokenpool.permits.waiting").get()),
        ),
        (
            "gemstone.tokenpool.wait.count",
            pool_wait.count().to_string(),
        ),
        ("gemstone.tokenpool.wait.p50_us", wait_us(0.5)),
        ("gemstone.tokenpool.wait.p95_us", wait_us(0.95)),
        ("gemstone.tokenpool.wait.p99_us", wait_us(0.99)),
        (
            "gemstone.sweep.queue.depth",
            format!("{:.0}", registry.gauge("sweep.queue.depth").get()),
        ),
    ] {
        println!("{name:<60} {value:>20}");
    }
    let name = run.stats.fidelity.name();
    println!("{:<60} {name:>20}", "gemstone.fidelity");
    if let Some(m) = &run.stats.sample {
        for (name, value) in [
            ("gemstone.sample.windows", m.windows.to_string()),
            (
                "gemstone.sample.measured_instructions",
                m.measured_instructions.to_string(),
            ),
            (
                "gemstone.sample.coverage_pct",
                format!("{:.2}", m.coverage * 100.0),
            ),
            (
                "gemstone.sample.rel_ci95_pct",
                format!("{:.3}", m.rel_ci95 * 100.0),
            ),
        ] {
            println!("{name:<60} {value:>20}");
        }
    }
    ExitCode::SUCCESS
}

/// `gemstone profile <workload>`: run one workload through the simulator
/// and report what the *simulator* did — host wall-clock, simulation rate
/// (MIPS), per-structure event rates, instruction mix, and cache-layer
/// effectiveness. The obs layer is always on for this subcommand.
fn run_profile(args: &Args) -> ExitCode {
    let Some(name) = args.positional.first() else {
        eprintln!("profile needs a workload name, e.g. `gemstone profile dhrystone`");
        return ExitCode::from(2);
    };
    let spec = match resolve_workload(name) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let model = parse_model(args);
    let freq: f64 = args
        .get("freq")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0e9);
    let tier = match parse_fidelity(args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let outputs = ObsOutputs::from_args(args);
    // Profiling is the point of this subcommand — spans and registry
    // counters are live even when no export file was requested.
    gemstone_obs::set_enabled(true);

    let t0 = std::time::Instant::now();
    let run = Gem5Sim::run_tier(&spec.scaled(args.scale()), model, freq, tier);
    let wall = t0.elapsed().as_secs_f64();

    let s = &run.stats;
    let instr = s.committed_instructions;
    let mips = if wall > 0.0 {
        instr as f64 / wall / 1.0e6
    } else {
        0.0
    };
    println!(
        "workload {}  model {}  freq {:.0} MHz",
        run.workload,
        model.name(),
        freq / 1.0e6
    );
    match &s.sample {
        Some(m) => println!(
            "fidelity {}  ({} windows, {} of {} instructions measured, \
             coverage {:.2} %, rel CI95 {:.3} %)",
            tier,
            m.windows,
            m.measured_instructions,
            m.total_instructions,
            m.coverage * 100.0,
            m.rel_ci95 * 100.0
        ),
        None => println!("fidelity {}", s.fidelity.name()),
    }
    println!(
        "simulated {:.6} s  ({} instructions, {} cycles, IPC {:.3})",
        run.time_s,
        instr,
        s.cycles,
        s.ipc()
    );
    println!("host wall-clock {:.6} s  ->  {mips:.2} MIPS\n", wall);

    // Per-structure event table: absolute counts plus per-kilo-instruction
    // rates, the unit architects compare across workloads.
    let pki = |n: u64| {
        if instr == 0 {
            0.0
        } else {
            n as f64 * 1000.0 / instr as f64
        }
    };
    let mut t = Table::new(vec!["structure", "accesses", "misses", "miss %", "MPKI"]);
    let mut structure = |name: &str, accesses: u64, misses: u64| {
        let pct = if accesses == 0 {
            0.0
        } else {
            misses as f64 / accesses as f64 * 100.0
        };
        t.row(vec![
            name.to_string(),
            accesses.to_string(),
            misses.to_string(),
            format!("{pct:.2}"),
            format!("{:.3}", pki(misses)),
        ]);
    };
    structure("L1I cache", s.l1i.accesses, s.l1i.misses);
    structure("L1D cache", s.l1d.accesses, s.l1d.misses);
    structure("L2 cache", s.l2.accesses, s.l2.misses);
    structure("ITLB", s.itlb.l1_accesses, s.itlb.l1_misses);
    structure("DTLB", s.dtlb.l1_accesses, s.dtlb.l1_misses);
    structure("page walks", s.itlb.walks + s.dtlb.walks, 0);
    structure(
        "branch predictor",
        s.branch.lookups,
        s.branch.total_mispredicts(),
    );
    println!("{}", t.render());

    // Committed instruction mix.
    let c = &s.committed;
    let total = c.total().max(1);
    let mut mix = Table::new(vec!["class", "count", "share %"]);
    for (label, count) in [
        ("int ALU", c.int_alu),
        ("int mul", c.int_mul),
        ("int div", c.int_div),
        ("FP", c.fp_alu + c.fp_div),
        ("SIMD", c.simd),
        ("loads", c.loads),
        ("stores", c.stores),
        ("branches", c.all_branches()),
        ("barriers", c.barriers),
        ("nops", c.nops),
    ] {
        mix.row(vec![
            label.to_string(),
            count.to_string(),
            format!("{:.1}", count as f64 / total as f64 * 100.0),
        ]);
    }
    println!("{}", mix.render());

    // Cache-layer effectiveness for this invocation.
    let cache = SimCache::global();
    let sim = cache.snapshot();
    let traces = cache.trace_cache().snapshot();
    println!(
        "simcache: {} hits, {} misses, {} entries",
        sim.hits, sim.misses, sim.entries
    );
    println!(
        "trace cache: {} hits, {} misses, {} evictions, {} entries, {} bytes",
        traces.hits, traces.misses, traces.evictions, traces.entries, traces.bytes
    );

    if let Err(e) = outputs.write() {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// What a `gemstone perf` input file turned out to hold, by inspection:
/// `BENCH_*.json` artefacts are a JSON array, journals are JSONL.
enum PerfInput {
    Bench(Vec<gemstone_obs::profile::BenchRec>),
    Journal(gemstone_obs::profile::Journal),
}

fn load_perf_input(path: &str) -> Result<PerfInput, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    if text.trim_start().starts_with('[') {
        gemstone_obs::profile::parse_bench_json(&text)
            .map(PerfInput::Bench)
            .map_err(|e| format!("{path}: {e}"))
    } else {
        gemstone_obs::profile::Journal::parse(&text)
            .map(PerfInput::Journal)
            .map_err(|e| format!("{path}: {e}"))
    }
}

/// `gemstone perf report <journal.jsonl>` / `gemstone perf diff <before>
/// <after> [--tolerance PCT]`. `report` renders the aggregated span-tree
/// profile of one JSONL journal; `diff` compares two journals (span time
/// and MIPS) or two `BENCH_*.json` records (speedup) and exits non-zero
/// when any metric regressed by more than the tolerance (default 20%) —
/// the CI gate over the repo's bench trajectory.
fn run_perf(args: &Args) -> ExitCode {
    let tolerance: f64 = match args.get("tolerance").map(str::parse).transpose() {
        Ok(t) => t.unwrap_or(20.0),
        Err(_) => {
            eprintln!("--tolerance needs a percentage, e.g. `--tolerance 20`");
            return ExitCode::from(2);
        }
    };
    match args.positional.as_slice() {
        [mode, path] if mode == "report" => {
            let journal = match load_perf_input(path) {
                Ok(PerfInput::Journal(j)) => j,
                Ok(PerfInput::Bench(_)) => {
                    eprintln!(
                        "{path} is a bench-record file; `perf report` takes a JSONL \
                         journal (from --jsonl or --flight-record)"
                    );
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", gemstone_obs::profile::render_report(&journal));
            ExitCode::SUCCESS
        }
        [mode, before, after] if mode == "diff" => {
            let (b, a) = match (load_perf_input(before), load_perf_input(after)) {
                (Ok(b), Ok(a)) => (b, a),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = match (b, a) {
                (PerfInput::Bench(b), PerfInput::Bench(a)) => {
                    gemstone_obs::profile::diff_bench(&b, &a, tolerance)
                }
                (PerfInput::Journal(b), PerfInput::Journal(a)) => {
                    gemstone_obs::profile::diff_journals(&b, &a, tolerance)
                }
                _ => {
                    eprintln!(
                        "{before} and {after} are different kinds of record \
                         (one bench JSON, one journal) — diff like with like"
                    );
                    return ExitCode::FAILURE;
                }
            };
            print!("{}", report.render());
            let regressions = report.regressions();
            if regressions > 0 {
                eprintln!("{regressions} metric(s) regressed beyond {tolerance:.0}% tolerance");
                return ExitCode::FAILURE;
            }
            println!("no regression beyond {tolerance:.0}% tolerance");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: gemstone perf report <journal.jsonl>\n\
                 \u{20}      gemstone perf diff <before> <after> [--tolerance PCT]\n\
                 (diff accepts two JSONL journals or two BENCH_*.json records)"
            );
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    // A crash mid-sweep should leave the flight-recorder ring on disk —
    // the last few thousand span/note events before the panic.
    gemstone_obs::flight::install_panic_hook();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        return usage();
    };
    let bool_flags: &[&str] = match cmd.as_str() {
        "collect" => &["resume"],
        _ => &[],
    };
    let args = match Args::parse(&raw[1..], bool_flags) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let allowed: &[&str] = match cmd.as_str() {
        "validate" => &[
            "scale",
            "clusters",
            "save",
            "fidelity",
            "segments",
            "metrics",
            "trace",
            "jsonl",
            "flight-record",
        ],
        "report" => &[
            "scale",
            "clusters",
            "save",
            "fidelity",
            "segments",
            "metrics",
            "trace",
            "jsonl",
            "flight-record",
        ],
        "collect" => &[
            "scale",
            "checkpoint",
            "resume",
            "save",
            "csv",
            "retries",
            "min-coverage",
            "fidelity",
            "segments",
            "metrics",
            "trace",
            "jsonl",
            "flight-record",
        ],
        "serve" => &[
            "addr",
            "workers",
            "queue-dir",
            "queue-limit",
            "min-coverage",
        ],
        "power" => &["scale", "cluster"],
        "ablate" => &["scale"],
        "suitability" => &["scale", "max-mape"],
        "improve" => &["scale", "target-mape"],
        "stats" => &["scale", "model", "fidelity"],
        "profile" => &[
            "scale",
            "model",
            "freq",
            "fidelity",
            "segments",
            "metrics",
            "trace",
            "jsonl",
            "flight-record",
        ],
        "perf" => &["tolerance"],
        _ => return usage(),
    };
    if let Some(flag) = args.unknown_flag(allowed) {
        eprintln!(
            "unknown flag --{flag} for `gemstone {cmd}` (allowed: {})",
            allowed
                .iter()
                .map(|f| format!("--{f}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        return ExitCode::from(3);
    }
    if let Err(e) = apply_segments(&args) {
        eprintln!("{e}");
        return ExitCode::from(2);
    }
    match cmd.as_str() {
        "validate" => run_pipeline(&args, false),
        "report" => run_pipeline(&args, true),
        "collect" => run_collect(&args),
        "serve" => run_serve(&args),
        "power" => run_power(&args),
        "ablate" => run_ablate(&args),
        "suitability" => run_suitability(&args),
        "improve" => run_improve(&args),
        "stats" => run_stats(&args),
        "profile" => run_profile(&args),
        "perf" => run_perf(&args),
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_flags_and_positionals() {
        let a = Args::parse(&strs(&["mi-sha", "--scale", "0.5", "--model", "old"]), &[]).unwrap();
        assert_eq!(a.positional, vec!["mi-sha"]);
        assert_eq!(a.scale(), 0.5);
        assert_eq!(a.get("model"), Some("old"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn args_default_scale_and_errors() {
        let a = Args::parse(&strs(&[]), &[]).unwrap();
        assert_eq!(a.scale(), 1.0);
        assert!(Args::parse(&strs(&["--scale"]), &[]).is_err());
        // Unparseable scale falls back to the default.
        let a = Args::parse(&strs(&["--scale", "not-a-number"]), &[]).unwrap();
        assert_eq!(a.scale(), 1.0);
    }

    #[test]
    fn bool_flags_take_no_value() {
        // `--resume` consumes nothing: the path after it stays positional /
        // the next flag still parses.
        let a = Args::parse(
            &strs(&["--checkpoint", "ck.json", "--resume", "--scale", "0.1"]),
            &["resume"],
        )
        .unwrap();
        assert!(a.has("resume"));
        assert_eq!(a.get("checkpoint"), Some("ck.json"));
        assert_eq!(a.scale(), 0.1);
        // Without the bool-flag declaration, `--resume` would eat `--scale`.
        let a = Args::parse(&strs(&["--resume", "--scale", "0.1"]), &[]).unwrap();
        assert_eq!(a.get("resume"), Some("--scale"));
        // Trailing bool flag needs no value either.
        let a = Args::parse(&strs(&["--resume"]), &["resume"]).unwrap();
        assert!(a.has("resume"));
        assert!(!a.has("checkpoint"));
    }

    #[test]
    fn unknown_flags_are_detected() {
        let a = Args::parse(&strs(&["--scale", "0.5", "--bogus", "x"]), &[]).unwrap();
        assert_eq!(a.unknown_flag(&["scale", "model"]), Some("bogus"));
        let a = Args::parse(&strs(&["--scale", "0.5"]), &[]).unwrap();
        assert_eq!(a.unknown_flag(&["scale", "model"]), None);
        // `--segments` is allowlisted on the sweep commands and rejected
        // (exit 3 in main) anywhere it is left off the list.
        let a = Args::parse(&strs(&["--segments", "4"]), &[]).unwrap();
        assert_eq!(a.unknown_flag(&["scale", "segments"]), None);
        assert_eq!(a.unknown_flag(&["scale", "model"]), Some("segments"));
    }

    #[test]
    fn segments_flag_parses_and_rejects_garbage() {
        // Absent flag: no-op.
        let a = Args::parse(&strs(&[]), &[]).unwrap();
        assert!(apply_segments(&a).is_ok());
        // Garbage value: the exit-2 error names the flag.
        let a = Args::parse(&strs(&["--segments", "many"]), &[]).unwrap();
        assert!(apply_segments(&a).unwrap_err().contains("--segments"));
        // A valid count lands in the environment knob the engines read.
        let a = Args::parse(&strs(&["--segments", "3"]), &[]).unwrap();
        assert!(apply_segments(&a).is_ok());
        assert_eq!(
            std::env::var(gemstone::uarch::segment::SEGMENTS_ENV).as_deref(),
            Ok("3")
        );
    }

    #[test]
    fn workload_resolution_is_exact_then_fuzzy() {
        // Exact names pass straight through.
        assert_eq!(resolve_workload("mi-sha").unwrap().name, "mi-sha");
        // A unique substring resolves (CI smoke relies on `dhrystone`).
        assert_eq!(
            resolve_workload("dhrystone").unwrap().name,
            "dhry-dhrystone"
        );
        // Unknown and ambiguous names fail with distinct messages.
        assert!(resolve_workload("no-such-workload")
            .unwrap_err()
            .contains("unknown"));
        assert!(resolve_workload("mi-").unwrap_err().contains("ambiguous"));
    }

    #[test]
    fn fidelity_flag_parses_and_rejects_garbage() {
        let a = Args::parse(&strs(&["--fidelity", "atomic"]), &[]).unwrap();
        assert_eq!(parse_fidelity(&a).unwrap().fidelity, Fidelity::Atomic);
        let a = Args::parse(&strs(&["--fidelity", "SAMPLED"]), &[]).unwrap();
        assert_eq!(parse_fidelity(&a).unwrap().fidelity, Fidelity::Sampled);
        let a = Args::parse(&strs(&["--fidelity", "turbo"]), &[]).unwrap();
        assert!(parse_fidelity(&a).unwrap_err().contains("--fidelity"));
        // No flag falls back to the environment-derived default. The suite
        // runs without GEMSTONE_FIDELITY set, so that default is approx.
        let a = Args::parse(&strs(&[]), &[]).unwrap();
        assert_eq!(parse_fidelity(&a).unwrap(), TierConfig::default());
    }

    #[test]
    fn obs_outputs_from_flags() {
        let a = Args::parse(&strs(&["--metrics", "/tmp/m.prom"]), &[]).unwrap();
        let o = ObsOutputs::from_args(&a);
        assert!(o.any());
        assert_eq!(o.metrics.as_deref(), Some("/tmp/m.prom"));
        assert_eq!(o.trace, None);
        let o = ObsOutputs::from_args(&Args::parse(&strs(&[]), &[]).unwrap());
        assert!(!o.any());
        // --flight-record alone also turns the obs layer on.
        let a = Args::parse(&strs(&["--flight-record", "/tmp/f.jsonl"]), &[]).unwrap();
        let o = ObsOutputs::from_args(&a);
        assert!(o.any());
        assert_eq!(o.flight.as_deref(), Some("/tmp/f.jsonl"));
    }

    #[test]
    fn perf_input_detection_is_by_shape() {
        let dir = std::env::temp_dir();
        let bench = dir.join("gemstone-cli-perf-bench.json");
        let journal = dir.join("gemstone-cli-perf-journal.jsonl");
        std::fs::write(
            &bench,
            "[\n  {\"bench\": \"b\", \"config\": \"c\", \"wall_s\": 1.0, \"speedup\": 2.0}\n]\n",
        )
        .unwrap();
        std::fs::write(
            &journal,
            "{\"type\": \"span\", \"name\": \"engine.run\", \"id\": 1, \"parent\": 0, \
             \"tid\": 1, \"start_us\": 0, \"dur_us\": 10, \"depth\": 0, \"attrs\": {}}\n",
        )
        .unwrap();
        match load_perf_input(bench.to_str().unwrap()).unwrap() {
            PerfInput::Bench(recs) => assert_eq!(recs[0].bench, "b"),
            PerfInput::Journal(_) => panic!("bench JSON misdetected as journal"),
        }
        match load_perf_input(journal.to_str().unwrap()).unwrap() {
            PerfInput::Journal(j) => assert_eq!(j.events.len(), 1),
            PerfInput::Bench(_) => panic!("journal misdetected as bench JSON"),
        }
        assert!(load_perf_input("/no/such/gemstone-journal.jsonl").is_err());
        std::fs::remove_file(bench).ok();
        std::fs::remove_file(journal).ok();
    }
}
